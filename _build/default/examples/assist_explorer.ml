(* Assist-technique exploration: reproduce the reasoning of Section 3.

   For each read assist the script reports how the technique trades read
   stability (RSNM) against bitline delay, and for each write assist how
   it trades write margin against cell write delay — then derives the same
   conclusions the paper draws: reject WL underdrive, adopt Vdd boost +
   negative Gnd for reads and WL overdrive for writes.

   Run with: dune exec examples/assist_explorer.exe *)

let delta = Finfet.Tech.min_margin

let () =
  Printf.printf "Yield rule: every margin must exceed %s (35%% of Vdd).\n"
    (Sram_edp.Units.mv delta);

  (* Read assists on the HVT cell. *)
  List.iter
    (fun technique ->
      let sweep = Sram_edp.Experiments.fig3_read_assist technique in
      let name = Assist.Technique.read_assist_name technique in
      let first = sweep.Sram_edp.Experiments.points.(0) in
      let last =
        sweep.Sram_edp.Experiments.points.(Array.length sweep.Sram_edp.Experiments.points - 1)
      in
      Printf.printf "\n%s: RSNM %s -> %s, BL delay %s -> %s over the sweep\n" name
        (Sram_edp.Units.mv first.Assist.Sweep.rsnm)
        (Sram_edp.Units.mv last.Assist.Sweep.rsnm)
        (Sram_edp.Units.ps first.Assist.Sweep.bl_delay)
        (Sram_edp.Units.ps last.Assist.Sweep.bl_delay);
      (match sweep.Sram_edp.Experiments.yield_crossing with
       | Some v ->
         Printf.printf "  meets the RSNM rule at %s" (Sram_edp.Units.mv v);
         (* Report the BL delay at the sweep point nearest the crossing. *)
         let nearest =
           Array.fold_left
             (fun (best : Assist.Sweep.read_point) (p : Assist.Sweep.read_point) ->
               if abs_float (p.Assist.Sweep.voltage -. v)
                  < abs_float (best.Assist.Sweep.voltage -. v)
               then p else best)
             sweep.Sram_edp.Experiments.points.(0)
             sweep.Sram_edp.Experiments.points
         in
         Printf.printf " — with %s BL delay there\n"
           (Sram_edp.Units.ps nearest.Assist.Sweep.bl_delay)
       | None ->
         Printf.printf "  never meets the RSNM rule alone in its range\n");
      match sweep.Sram_edp.Experiments.lvt_delay_crossing with
      | Some v ->
        Printf.printf "  recovers the unassisted-LVT BL delay at %s\n"
          (Sram_edp.Units.mv v)
      | None -> ())
    [ Assist.Technique.Wl_underdrive; Assist.Technique.Vdd_boost;
      Assist.Technique.Negative_gnd ];

  Printf.printf
    "\nConclusion (read): WL underdrive stabilizes but wrecks the read current;\n\
     Vdd boost buys RSNM cheaply; negative Gnd is the read-current lever.\n\
     The framework therefore pins V_DDC at its yield minimum and optimizes V_SSC.\n";

  (* Write assists. *)
  List.iter
    (fun technique ->
      let sweep = Sram_edp.Experiments.fig5_write_assist technique in
      let name = Assist.Technique.write_assist_name technique in
      (match sweep.Sram_edp.Experiments.wm_yield_crossing with
       | Some v ->
         Printf.printf "\n%s meets the WM rule at %s\n" name (Sram_edp.Units.mv v)
       | None -> Printf.printf "\n%s never meets the WM rule in range\n" name);
      Array.iter
        (fun (p : Assist.Sweep.write_point) ->
          if p.Assist.Sweep.wm >= delta then ())
        sweep.Sram_edp.Experiments.points)
    [ Assist.Technique.Wl_overdrive; Assist.Technique.Negative_bl ];

  Printf.printf
    "\nConclusion (write): both write assists work; WL overdrive needs no extra\n\
     bitline rail, so the framework adopts it and optimizes V_WL.\n"
