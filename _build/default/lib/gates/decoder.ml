type result = { delay : float; energy : float }

(* Predecoded row/column decoder:
     address buffer -> 2-bit predecode NAND2 + driver -> predecode lines
     fanning out to the per-row combine tree (NAND2 depth log2(groups))
     -> c_out.
   The critical path is priced with the method of logical effort over the
   whole path (F = G B H), with optimally sized buffers inserted so the
   per-stage effort stays near 4 — reproducing the logarithmic depth of a
   properly buffered decoder.  A NAND2 combine tree (not a wide m-input
   NAND) keeps the per-input load on the heavily fanned-out predecode
   lines at a single gate, as real decoders do.

   Energy counts what toggles on one access: the sized buffer ladder along
   the critical path, the rising and falling predecode line (wire load =
   fanout x one NAND2 input), the selected row's combine tree, and the
   final output load. *)
let decode ~nfet ~pfet ~bits ~c_out =
  assert (bits >= 0);
  if bits = 0 then { delay = 0.0; energy = 0.0 }
  else begin
    let tau = Logical_effort.tau ~nfet ~pfet in
    let vdd = Finfet.Tech.vdd_nominal in
    let inv = Logical_effort.inverter ~nfet ~pfet ~nfin:1 in
    let nand2 = Logical_effort.nand ~nfet ~pfet ~inputs:2 ~nfin:1 in
    let groups = (bits + 1) / 2 in
    let tree_depth =
      if groups <= 1 then 1
      else int_of_float (ceil (log (float_of_int groups) /. log 2.0))
    in
    let outputs = 1 lsl bits in
    let predecode_fanout = float_of_int (max 1 (outputs / 4)) in
    (* Logical effort along: inv, predecode NAND2, inv, tree_depth NAND2s. *)
    let g_path =
      nand2.Logical_effort.g ** float_of_int (1 + tree_depth)
    in
    let b_path = 2.0 *. predecode_fanout in
    let h_path = max (c_out /. inv.Logical_effort.c_in) 1.0 in
    let f_path = g_path *. b_path *. h_path in
    let logic_stages = 3 + tree_depth in
    let n_stages =
      max logic_stages (int_of_float (Float.round (log f_path /. log 4.0)))
    in
    let stage_effort = f_path ** (1.0 /. float_of_int n_stages) in
    let parasitics =
      (* two inverters + (1 + tree_depth) NAND2s + inserted buffers *)
      2.0
      +. (float_of_int (1 + tree_depth) *. nand2.Logical_effort.p)
      +. float_of_int (max 0 (n_stages - logic_stages))
    in
    let delay =
      tau *. ((float_of_int n_stages *. stage_effort) +. parasitics)
    in
    (* One-access switched capacitance. *)
    let ladder =
      if stage_effort <= 1.001 then
        inv.Logical_effort.c_in *. float_of_int n_stages
      else
        inv.Logical_effort.c_in *. stage_effort
        *. (((stage_effort ** float_of_int n_stages) -. 1.0)
            /. (stage_effort -. 1.0))
    in
    let line_load = predecode_fanout *. nand2.Logical_effort.c_in in
    let tree_switched =
      float_of_int tree_depth
      *. (nand2.Logical_effort.c_par +. nand2.Logical_effort.c_in)
    in
    let switched =
      ladder +. (2.0 *. line_load) +. tree_switched +. c_out
    in
    { delay; energy = switched *. vdd *. vdd }
  end

let characterize ~nfet ~pfet ~max_bits ~c_out =
  Array.init (max_bits + 1) (fun bits -> decode ~nfet ~pfet ~bits ~c_out)
