(** Logical-effort delay/energy model for static CMOS gates.

    The paper characterizes its peripheral circuits (decoders, drivers) by
    SPICE and stores the results in look-up tables keyed on the address
    width.  We generate those tables from the method of logical effort,
    which reproduces the log-depth growth that drives the architectural
    trade-off, with the technology time constant computed from the
    calibrated FinFET devices.

    Conventions: stage delay d = tau * (g * h + p) where g is the logical
    effort, h = C_load / C_in the electrical effort, and p the parasitic
    delay (in tau units).  Classical effort values (g_inv = 1,
    g_nandm = (m+2)/3, p_inv = 1, p_nandm = m) are used. *)

type gate = {
  g : float;        (** logical effort *)
  p : float;        (** parasitic delay, tau units *)
  c_in : float;     (** input capacitance per input, F *)
  c_par : float;    (** output parasitic capacitance, F *)
  nfin : int;       (** drive size (fin count of the pull-down) *)
}

val tau : nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> float
(** Technology time constant: worst-case single-fin effective resistance
    (Vdd / I_on, p-limited) times the single-fin inverter input cap. *)

val r_eff : Finfet.Device.params -> float
(** Effective switching resistance of a single fin: 0.5 Vdd / I_on, the
    factor calibrated against transistor-level transients of this device
    model (see {!Gate_sim} and the corresponding test). *)

val inverter :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> nfin:int -> gate

val nand :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params ->
  inputs:int -> nfin:int -> gate
(** [inputs]-input NAND ([inputs] >= 1; 1 degenerates to an inverter-like
    buffer stage). *)

val stage_delay : tau:float -> gate -> c_load:float -> float
(** Absolute delay (seconds) of one stage driving [c_load]. *)

val stage_energy : gate -> c_load:float -> vdd:float -> float
(** Switching energy of one transition: (C_par + C_load) * Vdd^2. *)

type chain_result = { delay : float; energy : float }

val chain :
  tau:float -> vdd:float ->
  stages:(gate * float) list ->
  chain_result
(** [chain ~stages] where each element is (gate, extra load on its output
    beyond the next stage's input): total delay and one-transition energy
    of the path.  The load of stage i is (extra_i + c_in of stage i+1);
    the last stage's extra load is its full output load. *)
