(** Row / column address decoders.

    Structure (the classic predecoded design [Kang-Leblebici]): address
    buffers feed 2-bit predecoders (NAND2 + INV); one final NAND per output
    row combines ceil(bits/2) predecoded lines and drives the word-line
    superbuffer.  The paper abstracts this block as LUTs
    D_dec(log n) / E_dec(log n); {!characterize} generates those tables. *)

type result = { delay : float; energy : float }

val decode :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  bits:int ->
  c_out:float ->
  result
(** Delay of the critical path through a [bits]-address decoder whose
    output drives [c_out] (the superbuffer input), and the switching
    energy of one decode operation (one output toggles; predecode lines
    fan out to a quarter of the 2^bits final gates).  [bits = 0] returns
    zeros (a 1-row / 1-word-select structure needs no decoder). *)

val characterize :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  max_bits:int ->
  c_out:float ->
  result array
(** [characterize ~max_bits ~c_out] tabulates {!decode} for 0..max_bits —
    the LUT the array model consumes. *)
