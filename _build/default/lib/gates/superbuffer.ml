type t = {
  stage_fins : int list;
  nfet : Finfet.Device.params;
  pfet : Finfet.Device.params;
}

let wl_driver_fins = 27
let rail_driver_fins = 20

let default_wl_driver ~nfet ~pfet = { stage_fins = [ 1; 3; 9; 27 ]; nfet; pfet }

let gates_of t =
  List.map
    (fun nfin -> Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin)
    t.stage_fins

let chain_all t ~c_load =
  let tau = Logical_effort.tau ~nfet:t.nfet ~pfet:t.pfet in
  let gates = gates_of t in
  let n = List.length gates in
  let stages =
    List.mapi (fun i g -> (g, if i = n - 1 then c_load else 0.0)) gates
  in
  Logical_effort.chain ~tau ~vdd:Finfet.Tech.vdd_nominal ~stages

let design ~nfet ~pfet ~c_load =
  (* Width-quantized equal-effort sizing: try 2..4 stages; for each depth,
     the continuous optimum is a geometric ratio rho = (c_load/c_in1)^(1/n)
     whose per-stage fins we round to integers (>= 1), then keep the depth
     with the smallest modelled delay. *)
  let c_in1 = (Logical_effort.inverter ~nfet ~pfet ~nfin:1).Logical_effort.c_in in
  let candidate depth =
    let rho = (c_load /. c_in1) ** (1.0 /. float_of_int depth) in
    let rho = max rho 1.0 in
    let fins =
      List.init depth (fun i -> max 1 (int_of_float (Float.round (rho ** float_of_int i))))
    in
    { stage_fins = fins; nfet; pfet }
  in
  let with_delay t = (t, (chain_all t ~c_load).Logical_effort.delay) in
  let candidates = List.map (fun d -> with_delay (candidate d)) [ 2; 3; 4 ] in
  let best =
    List.fold_left
      (fun (bt, bd) (t, d) -> if d < bd then (t, d) else (bt, bd))
      (List.hd candidates |> fun (t, d) -> (t, d))
      (List.tl candidates)
  in
  fst best

let delay t ~c_load = (chain_all t ~c_load).Logical_effort.delay

let continuous_optimum_delay ~nfet ~pfet ~c_load =
  let tau = Logical_effort.tau ~nfet ~pfet in
  let inv = Logical_effort.inverter ~nfet ~pfet ~nfin:1 in
  let h = max (c_load /. inv.Logical_effort.c_in) 1.0 in
  (* For each depth n <= 4: equal stage efforts h^(1/n), parasitic 1 per
     stage; take the best. *)
  let at_depth n =
    let fn = float_of_int n in
    tau *. ((fn *. (h ** (1.0 /. fn))) +. fn)
  in
  List.fold_left min (at_depth 1) (List.map at_depth [ 2; 3; 4 ])

let quantization_penalty ~nfet ~pfet ~c_load =
  let quantized = delay (design ~nfet ~pfet ~c_load) ~c_load in
  (quantized /. continuous_optimum_delay ~nfet ~pfet ~c_load) -. 1.0

let split_last t =
  match List.rev t.stage_fins with
  | [] -> invalid_arg "Superbuffer: empty driver"
  | last :: rev_front -> (List.rev rev_front, last)

let first_stages_delay t =
  let front, last = split_last t in
  match front with
  | [] -> 0.0
  | _ ->
    let tau = Logical_effort.tau ~nfet:t.nfet ~pfet:t.pfet in
    let final_c_in =
      (Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin:last).Logical_effort.c_in
    in
    let gates =
      List.map (fun nfin -> Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin) front
    in
    let n = List.length gates in
    let stages =
      List.mapi (fun i g -> (g, if i = n - 1 then final_c_in else 0.0)) gates
    in
    (Logical_effort.chain ~tau ~vdd:Finfet.Tech.vdd_nominal ~stages).Logical_effort.delay

let first_stages_energy t ~vdd =
  let front, last = split_last t in
  match front with
  | [] -> 0.0
  | _ ->
    let tau = Logical_effort.tau ~nfet:t.nfet ~pfet:t.pfet in
    let final_c_in =
      (Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin:last).Logical_effort.c_in
    in
    let gates =
      List.map (fun nfin -> Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin) front
    in
    let n = List.length gates in
    let stages =
      List.mapi (fun i g -> (g, if i = n - 1 then final_c_in else 0.0)) gates
    in
    ignore tau;
    (Logical_effort.chain ~tau ~vdd ~stages).Logical_effort.energy

let input_cap t =
  match t.stage_fins with
  | [] -> invalid_arg "Superbuffer: empty driver"
  | first :: _ ->
    (Logical_effort.inverter ~nfet:t.nfet ~pfet:t.pfet ~nfin:first).Logical_effort.c_in

let final_stage_fins t =
  match List.rev t.stage_fins with
  | [] -> invalid_arg "Superbuffer: empty driver"
  | last :: _ -> last
