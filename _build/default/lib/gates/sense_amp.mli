(** Latch-type sense amplifier.

    A standard cross-coupled inverter pair that regenerates a
    [delta_v] differential input to full rails once enabled.  The
    regeneration is exponential with time constant C / g_m, so the delay
    is (C/gm) ln(Vdd / (2 delta_v)); the energy is the charge to swing the
    internal nodes plus the enable line.  The analytic model is validated
    against a {!Spice} transient in the test suite. *)

type t = {
  nfet : Finfet.Device.params;
  pfet : Finfet.Device.params;
  nfin : int;          (** fin count of each latch device (default 2) *)
}

val default : nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> t

val node_cap : t -> float
(** Capacitance of one internal latch node. *)

val gm : t -> float
(** Small-signal transconductance of one latch inverter at the metastable
    point (finite difference of the drain current around Vdd/2). *)

val delay : t -> delta_v:float -> float
(** Regeneration delay from a [delta_v] initial split to 90%% of full
    swing. *)

val energy : t -> vdd:float -> float
(** One-evaluation switching energy. *)

val build_netlist :
  t -> delta_v:float -> Spice.Netlist.t * Spice.Netlist.node * Spice.Netlist.node
(** Cross-coupled pair with internal nodes pre-split by [delta_v] around
    Vdd/2 (initial conditions applied by the caller through
    {!Spice.Transient.run}); returns (netlist, node_plus, node_minus).
    Used by the validation test. *)
