type built = {
  netlist : Spice.Netlist.t;
  input : Spice.Netlist.node;
  output : Spice.Netlist.node;
}

let vdd = Finfet.Tech.vdd_nominal

(* A step that has settled long before the measurement window ends; the
   rise time is kept near the technology tau so the input slew resembles a
   real driving gate. *)
let input_step () =
  Spice.Netlist.Step { t_delay = 2e-12; t_rise = 1e-12; v0 = 0.0; v1 = vdd }

let add_inverter n ~nfet ~pfet ~nfin ~gate ~out ~vdd_node =
  Spice.Netlist.fet n ~params:pfet ~nfin ~gate ~drain:out ~source:vdd_node ();
  Spice.Netlist.fet n ~params:nfet ~nfin ~gate ~drain:out
    ~source:Spice.Netlist.ground ();
  (* Output parasitics as an explicit capacitor so the transient slews. *)
  let c_par =
    float_of_int nfin *. (nfet.Finfet.Device.c_drain +. pfet.Finfet.Device.c_drain)
  in
  Spice.Netlist.capacitor n ~plus:out ~minus:Spice.Netlist.ground ~farads:c_par

let build_inverter_chain ~nfet ~pfet ~fins ~c_load =
  assert (fins <> []);
  let n = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.fresh_node n "vdd" in
  let input = Spice.Netlist.fresh_node n "in" in
  Spice.Netlist.vdc n ~plus:vdd_node ~minus:Spice.Netlist.ground ~volts:vdd;
  Spice.Netlist.vwave n ~plus:input ~minus:Spice.Netlist.ground
    ~wave:(input_step ());
  let output =
    List.fold_left
      (fun gate nfin ->
        let out = Spice.Netlist.fresh_node n "stage" in
        add_inverter n ~nfet ~pfet ~nfin ~gate ~out ~vdd_node;
        out)
      input fins
  in
  Spice.Netlist.capacitor n ~plus:output ~minus:Spice.Netlist.ground
    ~farads:c_load;
  { netlist = n; input; output }

let build_nand2_stage ~nfet ~pfet ~nfin ~c_load =
  let n = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.fresh_node n "vdd" in
  let input = Spice.Netlist.fresh_node n "a" in
  let out = Spice.Netlist.fresh_node n "out" in
  let mid = Spice.Netlist.fresh_node n "stack" in
  Spice.Netlist.vdc n ~plus:vdd_node ~minus:Spice.Netlist.ground ~volts:vdd;
  Spice.Netlist.vwave n ~plus:input ~minus:Spice.Netlist.ground
    ~wave:(input_step ());
  (* b input tied high: the a transition switches the gate. *)
  let b = Spice.Netlist.fresh_node n "b" in
  Spice.Netlist.vdc n ~plus:b ~minus:Spice.Netlist.ground ~volts:vdd;
  (* Parallel pull-ups, series (upsized) pull-down stack. *)
  Spice.Netlist.fet n ~params:pfet ~nfin ~gate:input ~drain:out ~source:vdd_node ();
  Spice.Netlist.fet n ~params:pfet ~nfin ~gate:b ~drain:out ~source:vdd_node ();
  Spice.Netlist.fet n ~params:nfet ~nfin:(2 * nfin) ~gate:input ~drain:out
    ~source:mid ();
  Spice.Netlist.fet n ~params:nfet ~nfin:(2 * nfin) ~gate:b ~drain:mid
    ~source:Spice.Netlist.ground ();
  let c_par =
    float_of_int nfin
    *. (2.0 *. (nfet.Finfet.Device.c_drain +. pfet.Finfet.Device.c_drain))
  in
  Spice.Netlist.capacitor n ~plus:out ~minus:Spice.Netlist.ground ~farads:c_par;
  Spice.Netlist.capacitor n ~plus:mid ~minus:Spice.Netlist.ground
    ~farads:(float_of_int nfin *. nfet.Finfet.Device.c_drain);
  Spice.Netlist.capacitor n ~plus:out ~minus:Spice.Netlist.ground ~farads:c_load;
  { netlist = n; input; output = out }

let measure_delay ?(t_stop = 200e-12) built =
  let trace =
    Spice.Transient.run ~dt:(t_stop /. 800.0) ~t_stop built.netlist
  in
  let half = 0.5 *. vdd in
  let t_in =
    match
      Spice.Transient.crossing_time trace ~node:built.input ~threshold:half
        ~direction:`Rising
    with
    | Some t -> t
    | None -> failwith "Gate_sim.measure_delay: input never switched"
  in
  let out_crossing direction =
    Spice.Transient.crossing_time trace ~node:built.output ~threshold:half
      ~direction
  in
  match (out_crossing `Rising, out_crossing `Falling) with
  | None, None -> failwith "Gate_sim.measure_delay: output never switched"
  | Some t, None | None, Some t -> t -. t_in
  | Some a, Some b -> min a b -. t_in

let add_nand2_through n ~nfet ~pfet ~nfin ~gate ~out ~vdd_node =
  (* One 2-input NAND with the second input tied high, so the signal on
     [gate] propagates; parasitics attached explicitly. *)
  let b = vdd_node in
  let mid = Spice.Netlist.fresh_node n "nand_stack" in
  Spice.Netlist.fet n ~params:pfet ~nfin ~gate ~drain:out ~source:vdd_node ();
  Spice.Netlist.fet n ~params:pfet ~nfin ~gate:b ~drain:out ~source:vdd_node ();
  Spice.Netlist.fet n ~params:nfet ~nfin:(2 * nfin) ~gate ~drain:out ~source:mid ();
  Spice.Netlist.fet n ~params:nfet ~nfin:(2 * nfin) ~gate:b ~drain:mid
    ~source:Spice.Netlist.ground ();
  let c_par =
    float_of_int nfin
    *. (2.0 *. (nfet.Finfet.Device.c_drain +. pfet.Finfet.Device.c_drain))
  in
  Spice.Netlist.capacitor n ~plus:out ~minus:Spice.Netlist.ground ~farads:c_par;
  Spice.Netlist.capacitor n ~plus:mid ~minus:Spice.Netlist.ground
    ~farads:(float_of_int nfin *. nfet.Finfet.Device.c_drain)

let build_decoder_path ~nfet ~pfet ~bits ~c_out =
  assert (bits >= 1);
  let n = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.fresh_node n "vdd" in
  let input = Spice.Netlist.fresh_node n "addr" in
  Spice.Netlist.vdc n ~plus:vdd_node ~minus:Spice.Netlist.ground ~volts:vdd;
  Spice.Netlist.vwave n ~plus:input ~minus:Spice.Netlist.ground
    ~wave:(input_step ());
  (* Address buffer. *)
  let buffered = Spice.Netlist.fresh_node n "addr_buf" in
  add_inverter n ~nfet ~pfet ~nfin:1 ~gate:input ~out:buffered ~vdd_node;
  (* Predecode NAND2 + its driver, the latter sized for the line fanout —
     the counterpart of the buffer insertion the logical-effort model
     assumes. *)
  let groups = (bits + 1) / 2 in
  let fanout = max 1 ((1 lsl bits) / 4) in
  let driver_fins = max 1 (fanout / 3) in
  let predecoded = Spice.Netlist.fresh_node n "predec" in
  add_nand2_through n ~nfet ~pfet ~nfin:1 ~gate:buffered ~out:predecoded ~vdd_node;
  let line = Spice.Netlist.fresh_node n "line" in
  add_inverter n ~nfet ~pfet ~nfin:driver_fins ~gate:predecoded ~out:line ~vdd_node;
  (* The line fans out to a quarter of the final gates; the ones not on
     this path are pure gate load. *)
  let nand2_cin =
    ((2.0 *. nfet.Finfet.Device.c_gate) +. pfet.Finfet.Device.c_gate)
  in
  if fanout > 1 then
    Spice.Netlist.capacitor n ~plus:line ~minus:Spice.Netlist.ground
      ~farads:(float_of_int (fanout - 1) *. nand2_cin);
  (* Combine tree: depth log2(groups) of NAND2s (inverting stages; the
     delay measurement is edge-agnostic). *)
  let tree_depth =
    if groups <= 1 then 1
    else int_of_float (ceil (log (float_of_int groups) /. log 2.0))
  in
  let output = ref line in
  for _ = 1 to tree_depth do
    let next = Spice.Netlist.fresh_node n "tree" in
    add_nand2_through n ~nfet ~pfet ~nfin:1 ~gate:!output ~out:next ~vdd_node;
    output := next
  done;
  Spice.Netlist.capacitor n ~plus:!output ~minus:Spice.Netlist.ground
    ~farads:c_out;
  { netlist = n; input; output = !output }

let decoder_simulated_delay ~nfet ~pfet ~bits ~c_out =
  measure_delay (build_decoder_path ~nfet ~pfet ~bits ~c_out)

let superbuffer_simulated_delay (driver : Superbuffer.t) ~c_load =
  let built =
    build_inverter_chain ~nfet:driver.Superbuffer.nfet
      ~pfet:driver.Superbuffer.pfet ~fins:driver.Superbuffer.stage_fins ~c_load
  in
  measure_delay built

let superbuffer_model_delay driver ~c_load = Superbuffer.delay driver ~c_load
