(** The four-stage superbuffer driving word lines and column selects.

    The paper: "each output of row decoder is connected to a driver ...
    derived analytically and verified by SPICE ... To avoid large area
    overheads, four inverter stages are used", and the Table 1/2
    coefficients reveal a 27-fin final stage (the factor 27 in C_WL and
    I_WL).  We reproduce that design: geometric fin scaling 1-3-9-27 by
    default, with a designer that re-sizes (integer fins, max 4 stages)
    for arbitrary loads. *)

type t = {
  stage_fins : int list;   (** fin count per stage, input to output *)
  nfet : Finfet.Device.params;
  pfet : Finfet.Device.params;
}

val wl_driver_fins : int
(** Final-stage fin count of the paper's WL driver: 27. *)

val rail_driver_fins : int
(** Fin count of the CVDD / CVSS rail mux drivers: 20 (paper: "set to 20,
    obtained for n_c = 1024"). *)

val default_wl_driver :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> t
(** Stages 1-3-9-27. *)

val design :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params ->
  c_load:float -> t
(** Size a driver for [c_load]: pick the fin counts (integer, capped at 4
    stages) that minimize the logical-effort delay — the width-quantized
    version of equal-stage-effort sizing. *)

val delay : t -> c_load:float -> float
(** Total propagation delay of the whole driver into [c_load]. *)

val continuous_optimum_delay :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params ->
  c_load:float -> float
(** Delay of the ideal unquantized driver (continuous sizing, optimal
    depth up to 4 stages) for the same load.  The gap to
    [delay (design ...)] measures the cost of the FinFET width-quantization
    property the paper highlights — an ablation target. *)

val quantization_penalty :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params ->
  c_load:float -> float
(** delay(quantized) / delay(continuous) - 1, >= 0 up to rounding noise. *)

val first_stages_delay : t -> float
(** Propagation delay of all stages except the last (the paper's
    D_row_drv / D_col_drv: the final stage's contribution is accounted
    separately as the interconnect delay of Table 2). *)

val first_stages_energy : t -> vdd:float -> float
(** One-transition switching energy of those stages. *)

val input_cap : t -> float
(** Load presented to the decoder output. *)

val final_stage_fins : t -> int
