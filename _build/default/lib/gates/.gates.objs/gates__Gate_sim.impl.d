lib/gates/gate_sim.ml: Finfet List Spice Superbuffer
