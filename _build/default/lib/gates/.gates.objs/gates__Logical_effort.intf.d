lib/gates/logical_effort.mli: Finfet
