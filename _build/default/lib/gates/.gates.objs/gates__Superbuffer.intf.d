lib/gates/superbuffer.mli: Finfet
