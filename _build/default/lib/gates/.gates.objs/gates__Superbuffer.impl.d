lib/gates/superbuffer.ml: Finfet Float List Logical_effort
