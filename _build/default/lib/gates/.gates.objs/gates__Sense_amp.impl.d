lib/gates/sense_amp.ml: Finfet Netlist Spice
