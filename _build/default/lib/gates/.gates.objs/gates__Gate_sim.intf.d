lib/gates/gate_sim.mli: Finfet Spice Superbuffer
