lib/gates/logical_effort.ml: Finfet
