lib/gates/decoder.mli: Finfet
