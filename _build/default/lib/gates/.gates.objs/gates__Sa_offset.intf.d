lib/gates/sa_offset.mli: Finfet
