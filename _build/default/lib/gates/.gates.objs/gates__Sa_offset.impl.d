lib/gates/sa_offset.ml: Array Dc Finfet Netlist Numerics Spice
