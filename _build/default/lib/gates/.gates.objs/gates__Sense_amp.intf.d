lib/gates/sense_amp.mli: Finfet Spice
