lib/gates/decoder.ml: Array Finfet Float Logical_effort
