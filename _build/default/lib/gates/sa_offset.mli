(** Sense-amplifier input offset under device mismatch — the analysis
    behind the choice of the sensing swing Delta V_S.

    The paper fixes Delta V_S = 120 mV and notes that shrinking it "is
    difficult to do especially in advanced technology nodes with increased
    effect of process variations".  This module quantifies that: the
    latch's input-referred offset is the difference between its two
    inverters' switching thresholds under per-device Vt mismatch; the
    bitline must develop k sigma of that offset (plus margin) before the
    sense enable fires. *)

val trip_point :
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> float
(** Switching threshold of an inverter: the input voltage at which
    output = input (DC solve + root find). *)

type offset_summary = {
  samples : float array;   (** input-referred offsets, V *)
  sigma : float;
  mean : float;            (** ~0 for unbiased mismatch *)
  required_swing : float;  (** k sigma + margin *)
}

val analyze :
  ?sigma_vt:float ->
  ?n:int ->
  ?k:float ->
  ?margin:float ->
  ?seed:int ->
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  unit ->
  offset_summary
(** Monte Carlo over the latch's four devices (defaults: technology
    sigma-Vt, 200 samples, k = 5, 20 mV residual margin).  The resulting
    [required_swing] is directly comparable to the paper's 120 mV. *)
