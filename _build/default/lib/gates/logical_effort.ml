type gate = {
  g : float;
  p : float;
  c_in : float;
  c_par : float;
  nfin : int;
}

(* The 0.5 factor calibrates the effective switching resistance against
   transistor-level transients of this device model (Gate_sim): a device
   spends the swing mostly in saturation at nearly I_on, so the classic
   Vdd / I_on convention overstates R by ~2x here. *)
let r_eff params =
  0.5 *. Finfet.Tech.vdd_nominal /. Finfet.Device.i_on params ()

let tau ~nfet ~pfet =
  let r = max (r_eff nfet) (r_eff pfet) in
  r *. (nfet.Finfet.Device.c_gate +. pfet.Finfet.Device.c_gate)

let inverter ~nfet ~pfet ~nfin =
  assert (nfin > 0);
  let scale = float_of_int nfin in
  { g = 1.0;
    p = 1.0;
    c_in = scale *. (nfet.Finfet.Device.c_gate +. pfet.Finfet.Device.c_gate);
    c_par = scale *. (nfet.Finfet.Device.c_drain +. pfet.Finfet.Device.c_drain);
    nfin }

let nand ~nfet ~pfet ~inputs ~nfin =
  assert (inputs >= 1 && nfin > 0);
  let m = float_of_int inputs in
  let scale = float_of_int nfin in
  (* The m-stack NFET is upsized by m to keep the pull-down drive, which is
     what the classical (m+2)/3 effort assumes. *)
  let c_in =
    scale *. ((m *. nfet.Finfet.Device.c_gate) +. pfet.Finfet.Device.c_gate)
  in
  let c_par =
    scale
    *. ((m *. nfet.Finfet.Device.c_drain) +. (m *. pfet.Finfet.Device.c_drain))
  in
  { g = (m +. 2.0) /. 3.0; p = m; c_in; c_par; nfin }

let stage_delay ~tau gate ~c_load =
  let h = c_load /. gate.c_in in
  tau *. ((gate.g *. h) +. gate.p)

let stage_energy gate ~c_load ~vdd = (gate.c_par +. c_load) *. vdd *. vdd

type chain_result = { delay : float; energy : float }

let chain ~tau ~vdd ~stages =
  let rec loop acc_d acc_e = function
    | [] -> { delay = acc_d; energy = acc_e }
    | (gate, extra) :: rest ->
      let next_c_in = match rest with [] -> 0.0 | (g2, _) :: _ -> g2.c_in in
      let c_load = extra +. next_c_in in
      loop
        (acc_d +. stage_delay ~tau gate ~c_load)
        (acc_e +. stage_energy gate ~c_load ~vdd)
        rest
  in
  loop 0.0 0.0 stages
