let vtc_output ~nfet ~pfet ~vin =
  (* Single-node DC solve of the inverter output. *)
  let open Spice in
  let n = Netlist.create () in
  let vdd = Netlist.fresh_node n "vdd" in
  let input = Netlist.fresh_node n "in" in
  let out = Netlist.fresh_node n "out" in
  Netlist.vdc n ~plus:vdd ~minus:Netlist.ground ~volts:Finfet.Tech.vdd_nominal;
  Netlist.vdc n ~plus:input ~minus:Netlist.ground ~volts:vin;
  Netlist.fet n ~params:pfet ~gate:input ~drain:out ~source:vdd ();
  Netlist.fet n ~params:nfet ~gate:input ~drain:out ~source:Netlist.ground ();
  Dc.node_voltage (Dc.operating_point n) out

let trip_point ~nfet ~pfet =
  let vdd = Finfet.Tech.vdd_nominal in
  let gap vin = vtc_output ~nfet ~pfet ~vin -. vin in
  (* The VTC is decreasing and crosses the identity exactly once. *)
  Numerics.Roots.brent ~tol:1e-6 gap ~lo:0.01 ~hi:(vdd -. 0.01)

type offset_summary = {
  samples : float array;
  sigma : float;
  mean : float;
  required_swing : float;
}

let analyze ?(sigma_vt = Finfet.Variation.sigma_vt_default) ?(n = 200)
    ?(k = 5.0) ?(margin = 0.020) ?(seed = 23) ~nfet ~pfet () =
  assert (n > 1);
  let rng = Numerics.Rng.create ~seed in
  let samples =
    Array.init n (fun _ ->
        let sample d = Finfet.Variation.sample_device ~sigma_vt rng d in
        let trip_a = trip_point ~nfet:(sample nfet) ~pfet:(sample pfet) in
        let trip_b = trip_point ~nfet:(sample nfet) ~pfet:(sample pfet) in
        trip_a -. trip_b)
  in
  let sigma = Numerics.Stats.stddev samples in
  { samples;
    sigma;
    mean = Numerics.Stats.mean samples;
    required_swing = (k *. sigma) +. margin }
