type t = {
  nfet : Finfet.Device.params;
  pfet : Finfet.Device.params;
  nfin : int;
}

let default ~nfet ~pfet = { nfet; pfet; nfin = 2 }

let node_cap t =
  let scale = float_of_int t.nfin in
  (* Each node sees the drains of its own inverter and the gates of the
     opposite one, plus a bitline-isolation transmission-gate drain. *)
  scale
  *. (t.nfet.Finfet.Device.c_drain +. t.pfet.Finfet.Device.c_drain
      +. t.nfet.Finfet.Device.c_gate +. t.pfet.Finfet.Device.c_gate
      +. t.nfet.Finfet.Device.c_drain)

let gm t =
  let vdd = Finfet.Tech.vdd_nominal in
  let vmid = 0.5 *. vdd in
  let h = 1e-4 in
  let i vgs =
    Finfet.Device.ids t.nfet ~vgs ~vds:vmid
  in
  float_of_int t.nfin *. ((i (vmid +. h) -. i (vmid -. h)) /. (2.0 *. h))

let delay t ~delta_v =
  assert (delta_v > 0.0);
  let vdd = Finfet.Tech.vdd_nominal in
  let tau = node_cap t /. gm t in
  let target = 0.9 *. vdd in
  tau *. log (target /. delta_v)

let energy t ~vdd =
  (* Both internal nodes swing (one up, one down) plus the enable gate. *)
  let c_enable =
    float_of_int t.nfin *. t.nfet.Finfet.Device.c_gate
  in
  ((2.0 *. node_cap t) +. c_enable) *. vdd *. vdd

let build_netlist t ~delta_v =
  ignore delta_v;
  let open Spice in
  let n = Netlist.create () in
  let vdd_node = Netlist.fresh_node n "vdd" in
  let a = Netlist.fresh_node n "sa_plus" in
  let b = Netlist.fresh_node n "sa_minus" in
  Netlist.vdc n ~plus:vdd_node ~minus:Netlist.ground ~volts:Finfet.Tech.vdd_nominal;
  Netlist.fet n ~params:t.pfet ~nfin:t.nfin ~gate:b ~drain:a ~source:vdd_node ();
  Netlist.fet n ~params:t.nfet ~nfin:t.nfin ~gate:b ~drain:a ~source:Netlist.ground ();
  Netlist.fet n ~params:t.pfet ~nfin:t.nfin ~gate:a ~drain:b ~source:vdd_node ();
  Netlist.fet n ~params:t.nfet ~nfin:t.nfin ~gate:a ~drain:b ~source:Netlist.ground ();
  Netlist.capacitor n ~plus:a ~minus:Netlist.ground ~farads:(node_cap t);
  Netlist.capacitor n ~plus:b ~minus:Netlist.ground ~farads:(node_cap t);
  (n, a, b)
