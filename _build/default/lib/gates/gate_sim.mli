(** Structural (transistor-level) netlists for the gate models, and their
    transient verification.

    The paper notes its word-line driver was "derived analytically and
    verified by SPICE simulations"; this module is that verification for
    our substrates: it builds the actual FET netlists of inverters, NAND
    gates and superbuffer chains, runs the {!Spice} transient, and
    measures 50%%-to-50%% propagation delays that the test suite compares
    against the logical-effort estimates. *)

type built = {
  netlist : Spice.Netlist.t;
  input : Spice.Netlist.node;
  output : Spice.Netlist.node;
}

val build_inverter_chain :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  fins:int list ->
  c_load:float ->
  built
(** A chain of inverters with the given per-stage fin counts, each output
    loaded by its own drain parasitics (explicit capacitors) and the last
    by [c_load].  The input node is driven by a step source. *)

val build_nand2_stage :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  nfin:int ->
  c_load:float ->
  built
(** One 2-input NAND (series NFET stack, parallel PFETs) with its second
    input tied high, driven by a step on the first input — the switching
    case the logical-effort numbers describe. *)

val measure_delay : ?t_stop:float -> built -> float
(** Transient propagation delay: input crossing Vdd/2 to the output's
    first crossing of Vdd/2 (either direction).  Raises [Failure] if the
    output never switches in the window. *)

val superbuffer_simulated_delay :
  Superbuffer.t -> c_load:float -> float
(** Transient delay of the whole driver into [c_load]. *)

val superbuffer_model_delay : Superbuffer.t -> c_load:float -> float
(** The logical-effort estimate for the same structure (all stages). *)

val build_decoder_path :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  bits:int ->
  c_out:float ->
  built
(** The critical path of the predecoded decoder {!Decoder} models:
    address buffer, 2-bit predecode NAND2 + driver loaded with the full
    fanout (2^bits / 4 final-gate inputs, attached as an explicit
    capacitor), then the NAND2 combine tree into [c_out].  Off-path NAND
    inputs are tied so the stepped address input propagates. *)

val decoder_simulated_delay :
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  bits:int ->
  c_out:float ->
  float
(** Transient delay of {!build_decoder_path} — compared against
    {!Decoder.decode} in the test suite.  Note the structural path has no
    inserted buffers, so for large [bits] it is slower than the
    buffer-optimal LUT value; agreement is checked at moderate widths. *)
