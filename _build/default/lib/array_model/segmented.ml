let local_driver_fins = 9

type wl_breakdown = {
  segments : int;
  c_global : float;
  c_local : float;
  d_global : float;
  d_local : float;
  d_total : float;
  e_read : float;
  e_write : float;
}

let natural_segments (g : Geometry.t) = g.Geometry.nc / min g.Geometry.w g.Geometry.nc

let wl d cur (g : Geometry.t) (a : Components.assist) ~segments =
  let max_segments = natural_segments g in
  if segments < 1 || segments > max_segments || g.Geometry.nc mod segments <> 0
  then
    invalid_arg
      (Printf.sprintf "Segmented.wl: segments must divide n_c into >= W-cell groups (1..%d)"
         max_segments);
  let vdd = Finfet.Tech.vdd_nominal in
  let cells_per_segment = g.Geometry.nc / segments in
  (* Local driver input capacitance: a [local_driver_fins] inverter. *)
  let c_gn = d.Caps.c_gn and c_gp = d.Caps.c_gp in
  let c_dn = d.Caps.c_dn and c_dp = d.Caps.c_dp in
  let driver_in = float_of_int local_driver_fins *. (c_gn +. c_gp) in
  let driver_out = float_of_int local_driver_fins *. (c_dn +. c_dp) in
  (* Global line: the full row's wire plus one driver input per segment,
     still driven by the 27-fin last superbuffer stage. *)
  let c_global =
    (float_of_int g.Geometry.nc *. d.Caps.c_width)
    +. (float_of_int segments *. driver_in)
    +. (27.0 *. (c_dn +. c_dp))
  in
  (* Local line: the segment's cells (wire + access gates) plus its own
     driver's drain. *)
  let c_local =
    (float_of_int cells_per_segment *. (d.Caps.c_width +. (2.0 *. c_gn)))
    +. driver_out
  in
  let i_global = Currents.wl_read cur in
  let i_local =
    Currents.wl_read cur *. float_of_int local_driver_fins /. 27.0
  in
  let d_global = c_global *. vdd /. i_global in
  let d_local = c_local *. vdd /. i_local in
  { segments;
    c_global;
    c_local;
    d_global;
    d_local;
    d_total = d_global +. d_local;
    e_read = (c_global +. c_local) *. vdd *. vdd;
    e_write = (c_global +. c_local) *. vdd *. a.Components.vwl }

let evaluate env (g : Geometry.t) (a : Components.assist) ~segments =
  let base = Array_eval.evaluate env g a in
  let d = env.Array_eval.dcaps in
  let cur = env.Array_eval.currents in
  let flat_read = Components.wl_read d cur g a in
  let flat_write = Components.wl_write d cur g a in
  let seg = wl d cur g a ~segments in
  (* Swap the WL terms in the read/write delay and energy sums.  The flat
     WL sits on the row critical path of both operations; the write WL
     delay uses the overdriven drive level, so scale the segmented delay
     by the same ratio the flat model exhibits. *)
  let write_scale =
    if flat_read.Components.delay > 0.0 then
      flat_write.Components.delay /. flat_read.Components.delay
    else 1.0
  in
  let d_read = base.Array_eval.d_read -. flat_read.Components.delay +. seg.d_total in
  let d_write =
    base.Array_eval.d_write
    -. flat_write.Components.delay
    +. (seg.d_total *. write_scale)
  in
  let d_array = max d_read d_write in
  let e_read = base.Array_eval.e_read -. flat_read.Components.energy +. seg.e_read in
  let e_write =
    base.Array_eval.e_write -. flat_write.Components.energy +. seg.e_write
  in
  let e_switching =
    (env.Array_eval.beta *. e_read) +. ((1.0 -. env.Array_eval.beta) *. e_write)
  in
  let m = float_of_int (Geometry.capacity_bits g) in
  let e_leakage =
    m *. env.Array_eval.periphery.Periphery.p_leak_cell *. d_array
  in
  let e_total = (env.Array_eval.alpha *. e_switching) +. e_leakage in
  { base with
    Array_eval.d_read;
    d_write;
    d_array;
    e_read;
    e_write;
    e_switching;
    e_leakage;
    e_total;
    edp = e_total *. d_array }
