(** Characterized peripheral-circuit look-up tables.

    The paper: "delays and energy consumptions of decoder, driver, sense
    amplifier, and cell-level write are measured by SPICE simulations, and
    those with dependencies on a variable are stored in look-up tables."
    This module generates those LUTs from our substrates: logical-effort
    models for decoders/drivers, the analytic latch model for the sense
    amplifier, and cell transient simulation for the write delay as a
    function of V_WL. *)

type t = {
  row_decoder : Gates.Decoder.result array;
      (** indexed by address bits 0..max_bits *)
  col_decoder : Gates.Decoder.result array;
  driver_delay : float;   (** D_row_drv = D_col_drv: first three superbuffer stages *)
  driver_energy : float;
  sense_delay : float;    (** D_sense_amp at the configured Delta V_S *)
  sense_energy : float;
  write_cell_delay : Numerics.Interp.Table1d.t;
      (** D_write_sram as a function of V_WL (seconds vs volts) *)
  write_cell_energy : float;
  p_leak_cell : float;    (** watts per cell, hold state at nominal Vdd *)
}

val max_address_bits : int
(** 14 — covers n_r up to 1024 (the paper's range) and the much wider
    column spaces that appear when large capacities are evaluated as a
    single bank. *)

val characterize :
  ?delta_vs:float ->
  lib:Finfet.Library.t ->
  cell_flavor:Finfet.Library.flavor ->
  unit ->
  t
(** Build all tables for a cell flavor (periphery is always LVT).  The
    write-delay table runs one transient per V_WL grid point; results are
    not cached here — callers should reuse the returned value (see
    {!shared}). *)

val shared : cell_flavor:Finfet.Library.flavor -> t
(** Memoized characterization against the default device library at the
    default Delta V_S. *)

val row_dec : t -> bits:int -> Gates.Decoder.result
val col_dec : t -> bits:int -> Gates.Decoder.result

val write_delay : t -> vwl:float -> float
(** Table lookup, clamped to the characterized V_WL range. *)
