(** Divided (segmented) word-line architecture — an extension beyond the
    paper's flat WL.

    The paper's array asserts one word line across all n_c columns, so
    every cell in the row conducts on every access.  The classic divided-
    WL organization runs a light global word line (wire plus one local
    driver per segment) and only raises the selected segment's local WL —
    shortening the WL critical path and activating only the W accessed
    cells.  This module prices that organization with the same Equation-
    (1) machinery so it can be compared against the paper baseline
    (bench `ablation`).

    Modelling choices: the local driver is a fixed 9-fin buffer (a
    mid-rung of the paper's superbuffer); its input sits on the global
    line; segment selection reuses the column-decoder timing (it decodes
    the same address bits).  Energy follows the strict (Table 3) style:
    each component once, with the local-WL term covering only the selected
    segment. *)

val local_driver_fins : int
(** 9. *)

type wl_breakdown = {
  segments : int;
  c_global : float;       (** global WL capacitance *)
  c_local : float;        (** one segment's local WL capacitance *)
  d_global : float;
  d_local : float;
  d_total : float;        (** global + local, the segmented WL delay *)
  e_read : float;         (** global swing + one local segment *)
  e_write : float;
}

val wl : Caps.device_caps -> Currents.t -> Geometry.t ->
  Components.assist -> segments:int -> wl_breakdown
(** @raise Invalid_argument unless [segments] divides n_c into at least
    W-bit segments (1 <= segments <= n_c / min(W, n_c)). *)

val natural_segments : Geometry.t -> int
(** n_c / min(W, n_c): one segment per access group, the organization that
    activates exactly the accessed cells. *)

val evaluate :
  Array_eval.env -> Geometry.t -> Components.assist -> segments:int ->
  Array_eval.metrics
(** The full array metrics with the flat WL replaced by the segmented one
    (strict accounting).  All other components are the baseline's. *)
