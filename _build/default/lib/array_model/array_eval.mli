(** Array-level delay and energy — Table 3 and Equations (2)-(5).

    Read:  D_rd = max(row-path + WL + BL, column-path + COL)
                  + D_sense + D_precharge,rd
    Write: D_wr = max(row-path + WL_wr, column-path + COL + BL_wr)
                  + D_write_cell(V_WL) + D_precharge,wr

    D_array = max(D_rd, D_wr)
    E_sw    = beta E_rd + (1 - beta) E_wr
    E_leak  = M P_leak,cell D_array
    E       = alpha E_sw + E_leak

    Two energy-accounting modes are provided:
    - [`Paper_strict] (default) prices each Table 3 component exactly
      once, as the table prints them;
    - [`Physical] multiplies per-bitline components by their
      multiplicity: all n_c columns discharge and re-precharge on a read
      (every cell under the active word line conducts), W sense amps fire,
      W bitlines swing on a write, and the n_c - W unselected columns pay
      a read-disturb discharge.  The choice is an ablation benchmark. *)

type accounting = Paper_strict | Physical

type env = {
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  currents : Currents.t;
  periphery : Periphery.t;
  dcaps : Caps.device_caps;
  alpha : float;           (** array activity factor (paper: 0.5) *)
  beta : float;            (** read fraction of accesses (paper: 0.5) *)
  dcdc_overhead : float;   (** assist-rail energy scaling for DC-DC
                               inefficiency (paper: unspecified; 1.25) *)
  accounting : accounting;
}

val make_env :
  ?alpha:float ->
  ?beta:float ->
  ?dcdc_overhead:float ->
  ?accounting:accounting ->
  ?read_current_model:
    [ `Simulated | `Paper_fit | `Custom of vddc:float -> vssc:float -> float ] ->
  ?cell_width_factor:float ->
  cell_flavor:Finfet.Library.flavor ->
  unit ->
  env
(** Environment against the default calibrated library with memoized
    periphery characterization.  [cell_width_factor] scales the cell
    footprint's wire capacitances (1.0 = the 6T layout);
    [`Custom] supplies an alternative read-current model (used by the 8T
    comparison study, whose read stack differs from the 6T one). *)

type metrics = {
  d_read : float;
  d_write : float;
  d_array : float;          (** Equation (2) *)
  e_read : float;           (** E_sw,rd, one access *)
  e_write : float;          (** E_sw,wr, one access *)
  e_switching : float;      (** Equation (3) *)
  e_leakage : float;        (** Equation (4) *)
  e_total : float;          (** Equation (5) *)
  edp : float;              (** e_total x d_array, the objective *)
  d_bl_read : float;        (** bitline discharge term (Figure 7(d)) *)
  d_row_path_read : float;  (** decoder + driver + WL for the read *)
  d_col_path : float;       (** column decoder + driver + COL *)
}

val evaluate : env -> Geometry.t -> Components.assist -> metrics

val edp : env -> Geometry.t -> Components.assist -> float
(** Shortcut for the optimizer's objective. *)
