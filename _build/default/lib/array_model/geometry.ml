type t = {
  nr : int;
  nc : int;
  w : int;
  n_pre : int;
  n_wr : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~nr ~nc ?(w = 64) ~n_pre ~n_wr () =
  if not (is_power_of_two nr) then invalid_arg "Geometry.create: nr not a power of two";
  if not (is_power_of_two nc) then invalid_arg "Geometry.create: nc not a power of two";
  if not (is_power_of_two w) then invalid_arg "Geometry.create: w not a power of two";
  if n_pre <= 0 || n_wr <= 0 then invalid_arg "Geometry.create: fin counts must be positive";
  { nr; nc; w; n_pre; n_wr }

let capacity_bits t = t.nr * t.nc

let log2_exact n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let row_address_bits t = log2_exact t.nr

let column_address_bits t = if t.nc <= t.w then 0 else log2_exact (t.nc / t.w)

let has_column_mux t = t.nc > t.w

let area t =
  float_of_int t.nc *. Finfet.Tech.cell_width
  *. (float_of_int t.nr *. Finfet.Tech.cell_height)

let aspect_ratio t =
  float_of_int t.nc *. Finfet.Tech.cell_width
  /. (float_of_int t.nr *. Finfet.Tech.cell_height)

let pp ppf t =
  Format.fprintf ppf "%dx%d (w=%d, n_pre=%d, n_wr=%d)" t.nr t.nc t.w t.n_pre t.n_wr
