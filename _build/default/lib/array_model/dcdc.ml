let ratios = [| 1.0 /. 3.0; 0.5; 2.0 /. 3.0; 1.0; 4.0 /. 3.0; 1.5; 2.0 |]

let intrinsic_loss = 0.05

let efficiency ?(v_in = Finfet.Tech.vdd_nominal) ~v_out () =
  assert (v_in > 0.0);
  let target = abs_float v_out in
  if target = 0.0 then 1.0
  else if abs_float (target -. v_in) < 1e-9 then 1.0
  else begin
    (* Smallest available ratio able to source the target; an SC converter
       regulated below its ideal output wastes the difference linearly. *)
    let best = ref infinity in
    Array.iter
      (fun r ->
        let v_ideal = r *. v_in in
        if v_ideal >= target -. 1e-12 && v_ideal < !best then best := v_ideal)
      ratios;
    if Float.is_finite !best then
      (1.0 -. intrinsic_loss) *. (target /. !best)
    else
      (* Beyond the ratio set: cascade two stages, each with its loss. *)
      (1.0 -. intrinsic_loss) ** 2.0
  end

let overhead ?v_in ~v_out () = 1.0 /. efficiency ?v_in ~v_out ()

let assist_overhead (a : Components.assist) =
  let vdd = Finfet.Tech.vdd_nominal in
  let candidates =
    List.filter_map
      (fun v -> if abs_float (v -. vdd) < 1e-9 || v = 0.0 then None else Some v)
      [ a.Components.vddc; a.Components.vssc; a.Components.vwl ]
  in
  List.fold_left
    (fun acc v -> max acc (overhead ~v_out:v ()))
    1.0 candidates
