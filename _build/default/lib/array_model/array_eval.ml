type accounting = Paper_strict | Physical

type env = {
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  currents : Currents.t;
  periphery : Periphery.t;
  dcaps : Caps.device_caps;
  alpha : float;
  beta : float;
  dcdc_overhead : float;
  accounting : accounting;
}

let make_env ?(alpha = 0.5) ?(beta = 0.5) ?(dcdc_overhead = 1.25)
    ?(accounting = Paper_strict) ?(read_current_model = `Simulated)
    ?cell_width_factor ~cell_flavor () =
  let lib = Lazy.force Finfet.Library.default in
  let currents = Currents.create ~lib ~cell_flavor ~read_current_model in
  let periphery = Periphery.shared ~cell_flavor in
  let dcaps =
    Caps.device_caps_of ?cell_width_factor
      ~nfet:(Finfet.Library.nfet lib cell_flavor)
      ~pfet:(Finfet.Library.pfet lib cell_flavor)
      ()
  in
  { lib; cell_flavor; currents; periphery; dcaps; alpha; beta; dcdc_overhead;
    accounting }

type metrics = {
  d_read : float;
  d_write : float;
  d_array : float;
  e_read : float;
  e_write : float;
  e_switching : float;
  e_leakage : float;
  e_total : float;
  edp : float;
  d_bl_read : float;
  d_row_path_read : float;
  d_col_path : float;
}

let vdd = Finfet.Tech.vdd_nominal

let evaluate env (g : Geometry.t) (a : Components.assist) =
  let open Components in
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  let cvdd = Components.cvdd d cur g a in
  let cvss = Components.cvss d cur g a in
  let wl_rd = Components.wl_read d cur g a in
  let wl_wr = Components.wl_write d cur g a in
  let col = Components.col d cur g a in
  let bl_rd = Components.bl_read d cur g a in
  let bl_wr = Components.bl_write d cur g a in
  let pre_rd = Components.precharge_read d cur g a in
  let pre_wr = Components.precharge_write d cur g a in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  (* --- Table 3: delays --- *)
  let d_row_path_read =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_rd.delay
  in
  let d_col_path =
    if Geometry.has_column_mux g then
      col_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. col.delay
    else 0.0
  in
  let d_read =
    max (d_row_path_read +. bl_rd.delay) d_col_path
    +. per.Periphery.sense_delay +. pre_rd.delay
  in
  let d_write_cell = Periphery.write_delay per ~vwl:a.vwl in
  let d_row_path_write =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_wr.delay
  in
  let d_write =
    max d_row_path_write (d_col_path +. bl_wr.delay)
    +. d_write_cell +. pre_wr.delay
  in
  let d_array = max d_read d_write in
  (* --- Table 3: switching energies --- *)
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.energy in
  let e_cvss = assist_scaled cvss.energy in
  let e_wl_wr = if a.vwl > vdd then assist_scaled wl_wr.energy else wl_wr.energy in
  let nc = float_of_int g.Geometry.nc in
  (* A row narrower than the access width is read/written whole. *)
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let n_unselected = max 0.0 (nc -. w) in
  let e_read, e_write =
    match env.accounting with
    | Paper_strict ->
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy +. bl_rd.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. per.Periphery.sense_energy +. pre_rd.energy +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_wr.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy +. bl_wr.energy
        +. per.Periphery.write_cell_energy +. pre_wr.energy
      in
      (e_read, e_write)
    | Physical ->
      (* Every cell under the active word line conducts, so all n_c
         bitlines discharge and are re-precharged on a read; W sense amps
         evaluate.  A write swings W bitlines rail-to-rail and disturbs
         the other n_c - W columns by a read-like Delta V_S dip (priced at
         nominal rails: write operations carry no read assists). *)
      let c_bl = Caps.bl d g in
      let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy
        +. (nc *. (bl_rd.energy +. pre_rd.energy))
        +. col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. col.energy
        +. (w *. per.Periphery.sense_energy)
        +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. e_wl_wr +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. (w *. (bl_wr.energy +. per.Periphery.write_cell_energy +. pre_wr.energy))
        +. (n_unselected *. disturb)
      in
      (e_read, e_write)
  in
  (* --- Equations (2)-(5) --- *)
  let e_switching = (env.beta *. e_read) +. ((1.0 -. env.beta) *. e_write) in
  let m = float_of_int (Geometry.capacity_bits g) in
  let e_leakage = m *. per.Periphery.p_leak_cell *. d_array in
  let e_total = (env.alpha *. e_switching) +. e_leakage in
  { d_read; d_write; d_array;
    e_read; e_write; e_switching; e_leakage; e_total;
    edp = e_total *. d_array;
    d_bl_read = bl_rd.delay;
    d_row_path_read;
    d_col_path }

let edp env g a = (evaluate env g a).edp
