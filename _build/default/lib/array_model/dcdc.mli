(** Switched-capacitor DC-DC converter efficiency for the assist rails.

    The paper multiplies assist-circuit energies by an (unstated) scaling
    factor "to account for inefficiency of DC-DC converters".  This module
    replaces the arbitrary constant with a first-order model of an on-die
    switched-capacitor converter: an SC converter has a discrete set of
    ideal conversion ratios; its peak efficiency at output voltage v_out
    from rail v_in is (v_out / (r v_in)) for the smallest available ratio
    r with r v_in >= v_out, degraded by a fixed switching/control loss.

    The derived overheads justify treating the paper's factor as ~1.2-1.4
    for the boost rails used here, and let the energy model price each
    assist rail by its own conversion ratio. *)

val ratios : float array
(** Available conversion ratios relative to the input rail:
    1/3, 1/2, 2/3, 1, 4/3, 3/2, 2 (negative rails use the inverting
    versions of the same set). *)

val intrinsic_loss : float
(** Fixed switching + control loss: 5%% of the delivered energy. *)

val efficiency : ?v_in:float -> v_out:float -> unit -> float
(** Conversion efficiency delivering [v_out] (magnitude; a negative value
    is treated as an inverting rail) from [v_in] (default the nominal
    supply).  1.0 when [v_out] equals the input rail (no converter). *)

val overhead : ?v_in:float -> v_out:float -> unit -> float
(** 1 / {!efficiency}: the multiplier the energy model applies. *)

val assist_overhead : Components.assist -> float
(** Worst (largest) overhead across the rails an assist configuration
    actually uses — the single factor plugged into
    {!Array_eval.make_env}'s [dcdc_overhead] when deriving it from the
    design instead of using the default. *)
