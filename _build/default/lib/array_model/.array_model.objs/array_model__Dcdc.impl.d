lib/array_model/dcdc.ml: Array Components Finfet Float List
