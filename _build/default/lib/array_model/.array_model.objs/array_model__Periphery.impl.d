lib/array_model/periphery.ml: Array Finfet Gates Hashtbl Lazy Numerics Sram_cell
