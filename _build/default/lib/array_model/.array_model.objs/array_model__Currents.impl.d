lib/array_model/currents.ml: Finfet Gates Hashtbl
