lib/array_model/geometry.ml: Finfet Format
