lib/array_model/caps.ml: Finfet Gates Geometry
