lib/array_model/array_eval.ml: Caps Components Currents Finfet Gates Geometry Lazy Periphery
