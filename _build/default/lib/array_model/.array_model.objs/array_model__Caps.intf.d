lib/array_model/caps.mli: Finfet Geometry
