lib/array_model/dcdc.mli: Components
