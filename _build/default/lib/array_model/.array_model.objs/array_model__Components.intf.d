lib/array_model/components.mli: Caps Currents Geometry
