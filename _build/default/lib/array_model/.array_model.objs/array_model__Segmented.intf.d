lib/array_model/segmented.mli: Array_eval Caps Components Currents Geometry
