lib/array_model/currents.mli: Finfet
