lib/array_model/geometry.mli: Format
