lib/array_model/array_eval.mli: Caps Components Currents Finfet Geometry Periphery
