lib/array_model/periphery.mli: Finfet Gates Numerics
