lib/array_model/components.ml: Caps Currents Finfet Geometry
