lib/array_model/segmented.ml: Array_eval Caps Components Currents Finfet Geometry Periphery Printf
