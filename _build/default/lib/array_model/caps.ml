type device_caps = {
  c_dn : float;
  c_dp : float;
  c_gn : float;
  c_gp : float;
  c_width : float;
  c_height : float;
}

let device_caps_of ?(cell_width_factor = 1.0) ~nfet ~pfet () =
  { c_dn = nfet.Finfet.Device.c_drain;
    c_dp = pfet.Finfet.Device.c_drain;
    c_gn = nfet.Finfet.Device.c_gate;
    c_gp = pfet.Finfet.Device.c_gate;
    c_width = cell_width_factor *. Finfet.Tech.c_width;
    c_height = cell_width_factor *. Finfet.Tech.c_height }

let rail_fins = float_of_int Gates.Superbuffer.rail_driver_fins
let wl_fins = float_of_int Gates.Superbuffer.wl_driver_fins

let cvdd d (g : Geometry.t) =
  (float_of_int g.Geometry.nc *. (d.c_width +. (2.0 *. d.c_dp)))
  +. (2.0 *. rail_fins *. d.c_dp)

let cvss d (g : Geometry.t) =
  (float_of_int g.Geometry.nc *. (d.c_width +. (2.0 *. d.c_dn)))
  +. (2.0 *. rail_fins *. d.c_dn)

let wl d (g : Geometry.t) =
  (float_of_int g.Geometry.nc *. (d.c_width +. (2.0 *. d.c_gn)))
  +. (wl_fins *. (d.c_dn +. d.c_dp))

let col d (g : Geometry.t) =
  if not (Geometry.has_column_mux g) then 0.0
  else
    (float_of_int g.Geometry.nc *. d.c_width)
    +. (wl_fins *. (d.c_dn +. d.c_dp))
    +. (2.0 *. float_of_int g.Geometry.w *. float_of_int g.Geometry.n_wr
        *. (d.c_gn +. d.c_gp))

let bl d (g : Geometry.t) =
  let base =
    (float_of_int g.Geometry.nr *. (d.c_height +. d.c_dn))
    +. (float_of_int (g.Geometry.n_pre + 1) *. d.c_dp)
  in
  if not (Geometry.has_column_mux g) then
    base +. (float_of_int g.Geometry.n_wr *. (d.c_dn +. d.c_dp)) +. d.c_dp
  else
    base +. (2.0 *. float_of_int g.Geometry.n_wr *. (d.c_dn +. d.c_dp))
