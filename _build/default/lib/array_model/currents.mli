(** Average driver currents of Table 2.

    Each interconnect transition is priced with D = C dV / I using an
    average current I = coefficient x fins x I_device(bias).  The
    coefficients (0.30, 0.15, 0.25, 0.18, 0.33, 0.50) are the paper's
    SPICE-fitted values, kept verbatim; the device currents come from the
    calibrated LVT periphery devices.  *)

type t
(** Current model bound to a periphery device pair and a cell flavor. *)

val create :
  lib:Finfet.Library.t ->
  cell_flavor:Finfet.Library.flavor ->
  read_current_model:
    [ `Simulated | `Paper_fit | `Custom of vddc:float -> vssc:float -> float ] ->
  t

val i_on_pfet : t -> float
(** Single-fin LVT PFET ON current. *)

val i_on_tg : t -> float
(** Transmission-gate ON current per fin pair (n and p in parallel at
    half-swing). *)

val cvdd_driver : t -> vddc:float -> float
(** 0.30 x 20 x I_CVDD(V_DDC). *)

val cvss_driver : t -> vssc:float -> float
(** 0.15 x 20 x I_CVSS(V_SSC). *)

val wl_read : t -> float
(** 0.25 x 27 x I_ON,PFET. *)

val wl_write : t -> vwl:float -> float
(** 0.18 x 27 x I_WL(V_WL). *)

val col_driver : t -> float
(** 0.33 x 27 x I_ON,PFET. *)

val bl_write : t -> n_wr:int -> float
(** 0.50 x N_wr x I_ON,TG. *)

val precharge : t -> n_pre:int -> float
(** 0.50 x N_pre x I_ON,PFET. *)

val read_current : t -> vddc:float -> vssc:float -> float
(** I_read(V_DDC, V_SSC): the simulated access/pull-down stack current of
    the configured cell flavor, the paper's analytic fit, or a custom
    model, per the constructor choice.  Simulated values are cached (the
    optimizer calls this hot). *)
