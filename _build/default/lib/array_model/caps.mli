(** Interconnect capacitances of the array — Table 1 of the paper.

    Wire components use the layout-derived per-cell values C_width and
    C_height; device components use the drain/gate capacitances of the
    single-fin cell transistors (C_dn, C_dp, C_gn, C_gp).  The constants
    2 x 20 (rail mux drivers) and 27 (last WL/COL driver stage) are the
    paper's sizing choices, re-exported from {!Gates.Superbuffer}.

    The per-cell wire capacitances default to the 6T layout of
    {!Finfet.Tech} but are carried in {!device_caps} so larger cells
    (e.g. the 8T comparison study) can scale them. *)

type device_caps = {
  c_dn : float;      (** n-channel drain cap per fin *)
  c_dp : float;      (** p-channel drain cap per fin *)
  c_gn : float;      (** n-channel gate cap per fin *)
  c_gp : float;      (** p-channel gate cap per fin *)
  c_width : float;   (** wire capacitance across one cell width *)
  c_height : float;  (** wire capacitance across one cell height *)
}

val device_caps_of :
  ?cell_width_factor:float ->
  nfet:Finfet.Device.params -> pfet:Finfet.Device.params -> unit -> device_caps
(** [cell_width_factor] scales the 6T cell footprint (both width and
    height wire caps); default 1.0.  An 8T cell is typically ~1.3x. *)

val cvdd : device_caps -> Geometry.t -> float
(** C_CVDD = n_c (C_width + 2 C_dp) + 2*20*C_dp. *)

val cvss : device_caps -> Geometry.t -> float
(** C_CVSS = n_c (C_width + 2 C_dn) + 2*20*C_dn. *)

val wl : device_caps -> Geometry.t -> float
(** C_WL = n_c (C_width + 2 C_gn) + 27 (C_dn + C_dp). *)

val col : device_caps -> Geometry.t -> float
(** C_COL: 0 without a column mux, else
    n_c C_width + 27 (C_dn + C_dp) + 2 W N_wr (C_gn + C_gp). *)

val bl : device_caps -> Geometry.t -> float
(** C_BL: n_r (C_height + C_dn) + (N_pre + 1) C_dp + the write-path drains
    — one transmission gate plus the precharge-equalizer PFET when
    n_c <= W, two series transmission gates when the column mux is
    present. *)
