(** Array organization: the architecture-level optimization variables.

    An SRAM array holds M = n_r x n_c bits with n_r and n_c powers of two;
    W bits are accessed per cycle.  When n_c > W a column multiplexer
    (decoder + transmission gates) is present. *)

type t = {
  nr : int;      (** rows (cells per column / bitline) *)
  nc : int;      (** columns (cells per row / wordline) *)
  w : int;       (** access width in bits (the paper uses 64) *)
  n_pre : int;   (** precharger PFET fins *)
  n_wr : int;    (** write-buffer transmission-gate fins *)
}

val create : nr:int -> nc:int -> ?w:int -> n_pre:int -> n_wr:int -> unit -> t
(** @raise Invalid_argument unless n_r, n_c and w are powers of two,
    n_c >= 1, w >= 1, and the fin counts are positive. *)

val capacity_bits : t -> int

val row_address_bits : t -> int
(** log2 n_r. *)

val column_address_bits : t -> int
(** log2 (n_c / w), 0 when n_c <= w (no column mux). *)

val has_column_mux : t -> bool

val area : t -> float
(** Cell-array silicon area in m^2 (cell dimensions from {!Finfet.Tech});
    used by the aspect-ratio discussion and reporting, not by the EDP
    objective. *)

val aspect_ratio : t -> float
(** Physical width / height of the cell array. *)

val is_power_of_two : int -> bool

val pp : Format.formatter -> t -> unit
