(** Yield-driven assist-voltage selection.

    The paper pins V_DDC and V_WL at the minimum levels meeting the yield
    requirement (margins >= delta = 0.35 Vdd), because raising either only
    costs energy: V_DDC does not appear in the read delay and the cell
    write delay's contribution is negligible.  V_SSC is left free but
    bounded where RSNM starts degrading.  Voltages are snapped up to a
    10 mV grid, matching the paper's reported levels. *)

val voltage_grid : float
(** 10 mV. *)

val snap_up : float -> float
(** Round a voltage up to the next grid point (away from the constraint
    boundary). *)

type levels = {
  vddc_min : float;   (** minimum V_DDC with RSNM(vddc, vssc = 0) >= delta *)
  vwl_min : float;    (** minimum write-WL level with WM >= delta *)
  hsnm_nominal : float;  (** HSNM at nominal Vdd (must already exceed delta) *)
}

val solve :
  ?delta:float ->
  ?points:int ->
  ?corner:Finfet.Corners.corner ->
  ?celsius:float ->
  flavor:Finfet.Library.flavor ->
  unit ->
  levels
(** Bisection over the monotone margin-vs-voltage curves.
    [delta] defaults to the technology rule (157.5 mV).

    [corner] / [celsius] solve the pins for a derated cell instead of the
    nominal one — the corner-aware flow the PVT signoff example motivates:
    a design that must write at the SF corner needs a higher V_WL than the
    nominal-corner optimum, and this is where it comes from.  Defaults:
    TT, 25 C. *)

val rsnm_at :
  ?points:int ->
  flavor:Finfet.Library.flavor ->
  vddc:float -> vssc:float -> unit -> float
(** Memoized RSNM evaluation used to validate V_SSC choices (the paper
    caps the negative-Gnd range at -240 mV where RSNM degrades). *)

val margins_ok :
  ?delta:float ->
  ?points:int ->
  flavor:Finfet.Library.flavor ->
  vddc:float -> vssc:float -> vwl:float ->
  unit ->
  bool
(** Full simplified constraint of Section 4:
    min(HSNM, RSNM, WM) >= delta for the given assist levels. *)
