lib/opt/space.ml: Array Array_model List Yield
