lib/opt/yield.ml: Finfet Hashtbl Lazy Numerics Sram_cell
