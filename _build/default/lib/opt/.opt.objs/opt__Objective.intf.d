lib/opt/objective.mli: Array_model
