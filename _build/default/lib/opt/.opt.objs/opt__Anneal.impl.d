lib/opt/anneal.ml: Array Array_model Exhaustive List Numerics Objective Space Yield
