lib/opt/pareto.ml: Array_model Exhaustive List
