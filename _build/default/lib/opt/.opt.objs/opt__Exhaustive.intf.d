lib/opt/exhaustive.mli: Array_model Objective Space Yield
