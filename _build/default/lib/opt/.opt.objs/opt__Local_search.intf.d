lib/opt/local_search.mli: Array_model Exhaustive Objective Space Yield
