lib/opt/space.mli: Array_model Yield
