lib/opt/yield.mli: Finfet
