lib/opt/objective.ml: Array_model
