lib/opt/yield_mc.ml: Finfet Hashtbl Lazy Numerics Sram_cell Yield
