lib/opt/pareto.mli: Exhaustive
