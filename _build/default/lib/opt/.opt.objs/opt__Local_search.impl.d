lib/opt/local_search.ml: Array Array_model Exhaustive Float List Objective Space Yield
