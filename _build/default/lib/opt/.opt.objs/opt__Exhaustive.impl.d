lib/opt/exhaustive.ml: Array Array_model List Objective Space Yield
