lib/opt/anneal.mli: Array_model Exhaustive Objective Space
