lib/opt/array_yield.ml: Array_model Finfet Lazy Numerics Sram_cell Yield Yield_mc
