lib/opt/yield_mc.mli: Finfet
