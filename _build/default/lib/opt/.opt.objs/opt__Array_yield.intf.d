lib/opt/array_yield.mli: Array_model Finfet Sram_cell Yield_mc
