type method_ = M1 | M2

let method_name = function M1 -> "M1" | M2 -> "M2"

type t = {
  vssc_values : float array;
  nr_values : int array;
  n_pre_values : int array;
  n_wr_values : int array;
}

let default =
  { vssc_values = Array.init 25 (fun i -> -0.010 *. float_of_int i);
    nr_values = Array.init 10 (fun i -> 1 lsl (i + 1));
    n_pre_values = Array.init 50 (fun i -> i + 1);
    n_wr_values = Array.init 20 (fun i -> i + 1) }

let reduced =
  { vssc_values = Array.init 9 (fun i -> -0.030 *. float_of_int i);
    nr_values = Array.init 10 (fun i -> 1 lsl (i + 1));
    n_pre_values = [| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 40; 50 |];
    n_wr_values = [| 1; 2; 3; 4; 6; 8; 12; 16; 20 |] }

let merge_threshold = 0.020

type pins = {
  vddc : float;
  vwl : float;
  vssc_allowed : bool;
  extra_levels : int;
}

let pins_for method_ (levels : Yield.levels) =
  let open Yield in
  match method_ with
  | M1 ->
    let v = max levels.vddc_min levels.vwl_min in
    { vddc = v; vwl = v; vssc_allowed = false; extra_levels = 1 }
  | M2 ->
    if abs_float (levels.vddc_min -. levels.vwl_min) <= merge_threshold then begin
      let v = max levels.vddc_min levels.vwl_min in
      { vddc = v; vwl = v; vssc_allowed = true; extra_levels = 2 }
    end
    else
      { vddc = levels.vddc_min; vwl = levels.vwl_min; vssc_allowed = true;
        extra_levels = 3 }

let assist_of pins ~vssc =
  { Array_model.Components.vddc = pins.vddc;
    vssc = (if pins.vssc_allowed then vssc else 0.0);
    vwl = pins.vwl }

let candidate_geometries ?(w = 64) space ~capacity_bits =
  assert (Array_model.Geometry.is_power_of_two capacity_bits);
  let geoms = ref [] in
  Array.iter
    (fun nr ->
      if nr <= capacity_bits then begin
        let nc = capacity_bits / nr in
        if Array_model.Geometry.is_power_of_two nc then
          Array.iter
            (fun n_pre ->
              Array.iter
                (fun n_wr ->
                  geoms :=
                    Array_model.Geometry.create ~nr ~nc ~w ~n_pre ~n_wr ()
                    :: !geoms)
                space.n_wr_values)
            space.n_pre_values
      end)
    space.nr_values;
  List.rev !geoms

let size ?w space ~capacity_bits method_ =
  let geoms = List.length (candidate_geometries ?w space ~capacity_bits) in
  let vssc = match method_ with M1 -> 1 | M2 -> Array.length space.vssc_values in
  geoms * vssc
