type state = {
  vssc_i : int;
  nr_i : int;
  n_pre_i : int;
  n_wr_i : int;
}

let search ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?(restarts = 4) ?(w = 64) ~env ~capacity_bits ~method_ () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Local_search.search: capacity must be a power of two";
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels = match levels with Some l -> l | None -> Yield.solve ~flavor () in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let nr_values =
    Array.of_list
      (List.filter
         (fun nr ->
           nr <= capacity_bits
           && Array_model.Geometry.is_power_of_two (capacity_bits / nr))
         (Array.to_list space.Space.nr_values))
  in
  if Array.length nr_values = 0 then
    invalid_arg "Local_search.search: empty geometry space";
  let evaluated = ref 0 in
  let eval state =
    let nr = nr_values.(state.nr_i) in
    let geometry =
      Array_model.Geometry.create ~nr ~nc:(capacity_bits / nr) ~w
        ~n_pre:space.Space.n_pre_values.(state.n_pre_i)
        ~n_wr:space.Space.n_wr_values.(state.n_wr_i)
        ()
    in
    let assist = Space.assist_of pins ~vssc:vssc_values.(state.vssc_i) in
    let metrics = Array_model.Array_eval.evaluate env geometry assist in
    incr evaluated;
    { Exhaustive.geometry; assist; metrics;
      score = Objective.eval objective metrics }
  in
  (* Line scan of one coordinate with the rest pinned. *)
  let scan state coordinate =
    let dim =
      match coordinate with
      | `Vssc -> Array.length vssc_values
      | `Nr -> Array.length nr_values
      | `Npre -> Array.length space.Space.n_pre_values
      | `Nwr -> Array.length space.Space.n_wr_values
    in
    let with_index i =
      match coordinate with
      | `Vssc -> { state with vssc_i = i }
      | `Nr -> { state with nr_i = i }
      | `Npre -> { state with n_pre_i = i }
      | `Nwr -> { state with n_wr_i = i }
    in
    let best = ref (with_index 0) in
    let best_cand = ref (eval !best) in
    for i = 1 to dim - 1 do
      let s = with_index i in
      let c = eval s in
      if c.Exhaustive.score < !best_cand.Exhaustive.score then begin
        best := s;
        best_cand := c
      end
    done;
    (!best, !best_cand)
  in
  let descend start =
    let rec cycle state candidate =
      let state', candidate' =
        List.fold_left
          (fun (s, c) coordinate ->
            let s', c' = scan s coordinate in
            if c'.Exhaustive.score < c.Exhaustive.score then (s', c') else (s, c))
          (state, candidate)
          [ `Vssc; `Nr; `Npre; `Nwr ]
      in
      if candidate'.Exhaustive.score < candidate.Exhaustive.score -. 1e-40 then
        cycle state' candidate'
      else candidate'
    in
    cycle start (eval start)
  in
  (* Deterministic low-discrepancy spread of starting points: each
     coordinate walks its own irrational stride so restarts explore
     genuinely different basins (a single diagonal would revisit the same
     one). *)
  let start k =
    let pick n stride =
      let frac = Float.rem ((float_of_int k *. stride) +. (0.5 *. stride)) 1.0 in
      min (n - 1) (int_of_float (frac *. float_of_int n))
    in
    { vssc_i = pick (Array.length vssc_values) 0.754877;
      nr_i = pick (Array.length nr_values) 0.569840;
      n_pre_i = pick (Array.length space.Space.n_pre_values) 0.362547;
      n_wr_i = pick (Array.length space.Space.n_wr_values) 0.914107 }
  in
  let best = ref None in
  for k = 0 to restarts - 1 do
    let candidate = descend (start k) in
    match !best with
    | Some b when b.Exhaustive.score <= candidate.Exhaustive.score -> ()
    | Some _ | None -> best := Some candidate
  done;
  match !best with
  | None -> invalid_arg "Local_search.search: no candidates"
  | Some best -> { Exhaustive.best; evaluated = !evaluated; levels; pins }
