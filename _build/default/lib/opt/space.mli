(** The co-optimization search space and voltage-pin policies.

    Variables (Section 4): V_SSC in {0, -10, ..., -240 mV}, n_r in
    {2 .. 1024}, N_pre in {1 .. 50}, N_wr in {1 .. 20}; n_c = M / n_r.
    V_DDC and V_WL are pinned by {!Yield}.

    Methods (Section 5):
    - M1: one extra voltage level only — V_DDC = V_WL = max(minimums),
      V_SSC forced to 0;
    - M2: unrestricted levels — V_DDC and V_WL at their own minimums
      (merged into one level when within {!merge_threshold}, as the paper
      does for 6T-HVT), V_SSC free. *)

type method_ = M1 | M2

val method_name : method_ -> string

type t = {
  vssc_values : float array;
  nr_values : int array;
  n_pre_values : int array;
  n_wr_values : int array;
}

val default : t
(** The paper's ranges. *)

val reduced : t
(** A coarser grid (every other V_SSC step, power-of-two-ish fin steps)
    for quick runs and tests; the optimum it finds is within a few percent
    of the full search. *)

val merge_threshold : float
(** 20 mV: V_DDC and V_WL closer than this share one pin under M2. *)

type pins = {
  vddc : float;
  vwl : float;
  vssc_allowed : bool;   (** false under M1 *)
  extra_levels : int;    (** voltage pins beyond Vdd (reporting) *)
}

val pins_for : method_ -> Yield.levels -> pins

val assist_of : pins -> vssc:float -> Array_model.Components.assist
(** Clamps V_SSC to 0 when the policy forbids it. *)

val candidate_geometries :
  ?w:int -> t -> capacity_bits:int -> Array_model.Geometry.t list
(** All (n_r, n_c = M / n_r, N_pre, N_wr) combinations with both dimensions
    powers of two and n_r within the grid. *)

val size : ?w:int -> t -> capacity_bits:int -> method_ -> int
(** Number of design points the exhaustive search will visit. *)
