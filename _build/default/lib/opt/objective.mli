(** Optimization objectives over the array metrics.

    The paper minimizes energy x delay; the alternatives are ablation
    targets for studying how the chosen figure of merit moves the optimum
    (energy-only collapses toward HVT minimal structures, delay-only
    toward wide LVT arrays, ED^2 weights performance harder). *)

type t =
  | Energy_delay_product
  | Energy_delay_squared
  | Energy_only
  | Delay_only

val name : t -> string

val eval : t -> Array_model.Array_eval.metrics -> float
(** Scalar score, lower is better. *)

val all : t list
