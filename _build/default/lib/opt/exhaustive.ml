type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  levels : Yield.levels;
  pins : Space.pins;
}

let run ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?w ~env ~capacity_bits ~method_ ~keep_all () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Exhaustive.search: capacity must be a power of two";
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels =
    match levels with Some l -> l | None -> Yield.solve ~flavor ()
  in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let geometries = Space.candidate_geometries ?w space ~capacity_bits in
  if geometries = [] then invalid_arg "Exhaustive.search: empty geometry space";
  let best = ref None in
  let all = ref [] in
  let evaluated = ref 0 in
  List.iter
    (fun geometry ->
      Array.iter
        (fun vssc ->
          let assist = Space.assist_of pins ~vssc in
          let metrics = Array_model.Array_eval.evaluate env geometry assist in
          let score = Objective.eval objective metrics in
          incr evaluated;
          let candidate = { geometry; assist; metrics; score } in
          if keep_all then all := candidate :: !all;
          match !best with
          | Some b when b.score <= score -> ()
          | Some _ | None -> best := Some candidate)
        vssc_values)
    geometries;
  match !best with
  | None -> invalid_arg "Exhaustive.search: no candidates"
  | Some best ->
    ({ best; evaluated = !evaluated; levels; pins }, List.rev !all)

let search ?space ?objective ?levels ?w ~env ~capacity_bits ~method_ () =
  fst (run ?space ?objective ?levels ?w ~env ~capacity_bits ~method_ ~keep_all:false ())

let search_all ?space ?objective ?levels ?w ~env ~capacity_bits ~method_ () =
  run ?space ?objective ?levels ?w ~env ~capacity_bits ~method_ ~keep_all:true ()
