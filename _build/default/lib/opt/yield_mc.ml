type config = {
  k : float;
  samples : int;
  sigma_vt : float;
  seed : int;
  points : int;
}

let default_config =
  { k = 3.0; samples = 25; sigma_vt = Finfet.Variation.sigma_vt_default;
    seed = 7; points = 31 }

let devices_of flavor =
  let lib = Lazy.force Finfet.Library.default in
  (Finfet.Library.nfet lib flavor, Finfet.Library.pfet lib flavor)

let mu_minus_k_sigma cfg values = Numerics.Stats.mu_minus_k_sigma values ~k:cfg.k

(* One constraint evaluation: sample margins at the given rails. *)
let sample_worst cfg ~flavor ~vddc ~vssc ~vwl =
  let nfet, pfet = devices_of flavor in
  let samples =
    Sram_cell.Montecarlo.sample_margins ~sigma_vt:cfg.sigma_vt
      ~points:cfg.points ~seed:cfg.seed ~n:cfg.samples ~nfet ~pfet
      ~read_condition:(Sram_cell.Sram6t.read ~vddc ~vssc ())
      ~write_condition:(Sram_cell.Sram6t.write0 ~vwl ())
      ()
  in
  min
    (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.hsnm)
    (min
       (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.rsnm)
       (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.wm))

type key = {
  k_flavor : Finfet.Library.flavor;
  k_vddc : float;
  k_vssc : float;
  k_vwl : float;
  k_cfg : config;
}

let cache : (key, float) Hashtbl.t = Hashtbl.create 64

let worst_margin ?(config = default_config) ~flavor ~vddc ~vssc ~vwl () =
  let key = { k_flavor = flavor; k_vddc = vddc; k_vssc = vssc; k_vwl = vwl;
              k_cfg = config } in
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
    let v = sample_worst config ~flavor ~vddc ~vssc ~vwl in
    Hashtbl.add cache key v;
    v

type levels = {
  vddc_min : float;
  vwl_min : float;
  achieved_margin : float;
}

(* Grid walk upward on the 10 mV grid until the per-margin k-sigma
   condition holds; the margins' means are monotone in their own voltage,
   so the first passing grid point is the minimum. *)
let grid_search ~lo ~hi passes =
  let rec walk v =
    if v > hi then hi
    else if passes v then v
    else walk (v +. Yield.voltage_grid)
  in
  walk lo

let solve ?(config = default_config) ~flavor () =
  let nfet, pfet = devices_of flavor in
  let margins_at ~vddc ~vwl =
    Sram_cell.Montecarlo.sample_margins ~sigma_vt:config.sigma_vt
      ~points:config.points ~seed:config.seed ~n:config.samples ~nfet ~pfet
      ~read_condition:(Sram_cell.Sram6t.read ~vddc ())
      ~write_condition:(Sram_cell.Sram6t.write0 ~vwl ())
      ()
  in
  let vdd = Finfet.Tech.vdd_nominal in
  (* RSNM pins V_DDC (WL level is irrelevant to the read distribution). *)
  let vddc_min =
    grid_search ~lo:vdd ~hi:0.80 (fun vddc ->
        let s = margins_at ~vddc ~vwl:vdd in
        mu_minus_k_sigma config s.Sram_cell.Montecarlo.rsnm >= 0.0)
  in
  (* WM pins V_WL. *)
  let vwl_min =
    grid_search ~lo:vdd ~hi:0.85 (fun vwl ->
        let s = margins_at ~vddc:vddc_min ~vwl in
        mu_minus_k_sigma config s.Sram_cell.Montecarlo.wm >= 0.0)
  in
  { vddc_min;
    vwl_min;
    achieved_margin =
      worst_margin ~config ~flavor ~vddc:vddc_min ~vssc:0.0 ~vwl:vwl_min () }
