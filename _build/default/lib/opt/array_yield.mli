(** Statistical array yield — what the paper's margin rule is a proxy for.

    The paper constrains min(HSNM, RSNM, WM) >= 0.35 Vdd because its Monte
    Carlo study found that threshold "to achieve a high-yield SRAM cell".
    This module computes the quantity that rule stands in for: the
    probability that an M-bit array (optionally with spare rows for
    repair) is fully functional, from the Gaussian tails of the measured
    margin distributions.

    Model: a cell fails if any margin falls below zero; margins are
    treated as independent Gaussians fitted to the Monte Carlo samples
    (a mild approximation the paper's own mu - k sigma form shares).  A
    row fails if any of its n_c cells fail; with r spare rows the array
    survives up to r failing rows. *)

val cell_failure_probability : Sram_cell.Montecarlo.margin_samples -> float
(** P(any margin < 0) = 1 - prod over margins of Phi(mu / sigma). *)

val array_yield :
  ?spare_rows:int ->
  geometry:Array_model.Geometry.t ->
  cell_fail:float ->
  unit ->
  float
(** Yield of one array: P(#failing rows <= spare_rows) with
    p_row = 1 - (1 - cell_fail)^n_c. *)

type solved = {
  vddc_min : float;         (** minimum boost meeting the yield target *)
  achieved_yield : float;
  cell_fail : float;        (** at the solved level *)
}

val solve_vddc :
  ?config:Yield_mc.config ->
  ?spare_rows:int ->
  ?target:float ->
  flavor:Finfet.Library.flavor ->
  geometry:Array_model.Geometry.t ->
  unit ->
  solved
(** Walk V_DDC up the 10 mV grid until the array yield reaches [target]
    (default 0.99).  The write level rides along at the same value (the
    HVT single-pin case).  This is the statistically-grounded alternative
    to both the simplified 35%%-of-Vdd rule and the raw k-sigma form —
    and, unlike them, it depends on the array size, which the bench
    ablation demonstrates. *)
