(** Simulated annealing over the discrete co-optimization space.

    An ablation partner for {!Exhaustive}: the paper argues exhaustive
    search suffices (four small ranges, minutes on a server); annealing
    demonstrates what a heuristic buys — orders of magnitude fewer
    evaluations at a small optimality risk — which matters if the space is
    extended (e.g. per-bank voltages). Deterministic given the seed. *)

type schedule = {
  initial_temperature : float;  (** in units of relative score (0.1 = 10%) *)
  cooling : float;              (** geometric factor per step, < 1 *)
  steps : int;
}

val default_schedule : schedule

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?schedule:schedule ->
  ?w:int ->
  seed:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result
(** Same result shape as {!Exhaustive.search}; [evaluated] counts
    objective evaluations (the cost being traded against quality). *)
