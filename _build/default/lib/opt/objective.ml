type t =
  | Energy_delay_product
  | Energy_delay_squared
  | Energy_only
  | Delay_only

let name = function
  | Energy_delay_product -> "EDP"
  | Energy_delay_squared -> "ED^2"
  | Energy_only -> "energy"
  | Delay_only -> "delay"

let eval t (m : Array_model.Array_eval.metrics) =
  let open Array_model.Array_eval in
  match t with
  | Energy_delay_product -> m.e_total *. m.d_array
  | Energy_delay_squared -> m.e_total *. m.d_array *. m.d_array
  | Energy_only -> m.e_total
  | Delay_only -> m.d_array

let all = [ Energy_delay_product; Energy_delay_squared; Energy_only; Delay_only ]
