let gaussian_ok samples =
  let mu = Numerics.Stats.mean samples in
  let sigma = Numerics.Stats.stddev samples in
  if sigma <= 0.0 then if mu >= 0.0 then 1.0 else 0.0
  else Numerics.Stats.normal_cdf ~mu ~sigma 0.0 |> fun below -> 1.0 -. below

let cell_failure_probability (m : Sram_cell.Montecarlo.margin_samples) =
  let ok =
    gaussian_ok m.Sram_cell.Montecarlo.hsnm
    *. gaussian_ok m.Sram_cell.Montecarlo.rsnm
    *. gaussian_ok m.Sram_cell.Montecarlo.wm
  in
  1.0 -. ok

let array_yield ?(spare_rows = 0) ~geometry ~cell_fail () =
  assert (cell_fail >= 0.0 && cell_fail <= 1.0 && spare_rows >= 0);
  let nc = geometry.Array_model.Geometry.nc in
  let nr = geometry.Array_model.Geometry.nr in
  (* log1p keeps (1-p)^nc accurate for the tiny p this analysis lives on. *)
  let p_row = 1.0 -. exp (float_of_int nc *. log1p (-.cell_fail)) in
  Numerics.Stats.binomial_cdf ~n:nr ~p:p_row spare_rows

type solved = {
  vddc_min : float;
  achieved_yield : float;
  cell_fail : float;
}

let solve_vddc ?(config = Yield_mc.default_config) ?(spare_rows = 0)
    ?(target = 0.99) ~flavor ~geometry () =
  let lib = Lazy.force Finfet.Library.default in
  let nfet = Finfet.Library.nfet lib flavor in
  let pfet = Finfet.Library.pfet lib flavor in
  let evaluate vddc =
    let samples =
      Sram_cell.Montecarlo.sample_margins ~sigma_vt:config.Yield_mc.sigma_vt
        ~points:config.Yield_mc.points ~seed:config.Yield_mc.seed
        ~n:config.Yield_mc.samples ~nfet ~pfet
        ~read_condition:(Sram_cell.Sram6t.read ~vddc ())
        ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:vddc ())
        ()
    in
    let cell_fail = cell_failure_probability samples in
    (cell_fail, array_yield ~spare_rows ~geometry ~cell_fail ())
  in
  let rec walk vddc =
    let cell_fail, achieved = evaluate vddc in
    if achieved >= target || vddc >= 0.80 then
      { vddc_min = vddc; achieved_yield = achieved; cell_fail }
    else walk (vddc +. Yield.voltage_grid)
  in
  walk Finfet.Tech.vdd_nominal
