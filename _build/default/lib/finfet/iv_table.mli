(** Tabulated I-V device models.

    Production PDKs ship device characteristics as look-up tables rather
    than closed forms; this module builds that representation from the
    compact model (log-domain bilinear interpolation over a [vgs] x [vds]
    grid, so subthreshold decades interpolate with bounded relative
    error) and quantifies the accuracy loss — demonstrating that the rest
    of the stack only needs table-grade device data. *)

type t

val build :
  ?vgs_points:int ->
  ?vds_points:int ->
  ?v_max:float ->
  Device.params ->
  t
(** Sample the device on a uniform grid (defaults 61 x 61 points up to
    0.85 V). *)

val ids : t -> vgs:float -> vds:float -> float
(** Interpolated drain current per fin; clamps outside the grid; exactly 0
    at [vds <= 0] like the compact model. *)

val max_relative_error :
  ?samples:int -> ?seed:int -> t -> Device.params -> float
(** Monte Carlo over the bias box: worst relative interpolation error
    against the compact model, ignoring points where both currents are
    below 1 fA (deep-off noise floor). *)
