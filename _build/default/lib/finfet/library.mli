(** The calibrated 7nm FinFET device library.

    Two threshold flavors are provided, as in the paper: LVT (used for all
    peripheral circuits, and optionally SRAM cells) and HVT (the paper's
    proposed SRAM-cell device).  All devices are single-fin prototypes;
    multi-fin instances scale via the [nfin] arguments of {!Device}. *)

type flavor = Lvt | Hvt

val flavor_to_string : flavor -> string
val flavor_of_string : string -> flavor option

type t = {
  nfet_lvt : Device.params;
  pfet_lvt : Device.params;
  nfet_hvt : Device.params;
  pfet_hvt : Device.params;
}

val default : t Lazy.t
(** The library calibrated against the paper anchors (see
    {!Calibration}).  Lazy because calibration runs a few dozen nonlinear
    solves. *)

val nfet : t -> flavor -> Device.params
val pfet : t -> flavor -> Device.params

val i_read :
  t -> flavor -> vddc:float -> vssc:float -> float
(** Read current of a single-fin cell stack of the given flavor with WL and
    BL at nominal Vdd — the quantity the paper fits as b (V - Vt)^a.
    Computed by the circuit-level stack solve, not the fit. *)

val fit_read_current : t -> flavor -> Numerics.Fit.power_law_fit
(** Re-derive the paper's power-law fit from simulated stack currents over
    the assist voltage range (V_DDC in 450..700 mV, V_SSC in -240..0 mV).
    For HVT this recovers a ~ 1.3, b ~ 9.5e-5, vt ~ 0.335 by construction
    of the calibration; for LVT it documents the model's LVT fit. *)
