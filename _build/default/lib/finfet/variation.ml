let sigma_vt_default = 0.020

let sample_device ?(sigma_vt = sigma_vt_default) rng params =
  let vt = Numerics.Rng.gaussian rng ~mu:params.Device.vt ~sigma:sigma_vt in
  Device.with_vt params (max 0.02 vt)

type cell_sample = {
  pull_up_l : Device.params;
  pull_up_r : Device.params;
  pull_down_l : Device.params;
  pull_down_r : Device.params;
  access_l : Device.params;
  access_r : Device.params;
}

let sample_cell ?(sigma_vt = sigma_vt_default) rng ~nfet ~pfet =
  { pull_up_l = sample_device ~sigma_vt rng pfet;
    pull_up_r = sample_device ~sigma_vt rng pfet;
    pull_down_l = sample_device ~sigma_vt rng nfet;
    pull_down_r = sample_device ~sigma_vt rng nfet;
    access_l = sample_device ~sigma_vt rng nfet;
    access_r = sample_device ~sigma_vt rng nfet }

let nominal_cell ~nfet ~pfet =
  { pull_up_l = pfet;
    pull_up_r = pfet;
    pull_down_l = nfet;
    pull_down_r = nfet;
    access_l = nfet;
    access_r = nfet }
