type polarity = Nfet | Pfet

type params = {
  name : string;
  polarity : polarity;
  vt : float;
  alpha : float;
  beta : float;
  s_smooth : float;
  c_gate : float;
  c_drain : float;
}

(* Soft-plus overdrive.  Guard the exponential against overflow: for
   arguments beyond ~30 the soft-plus is its argument to machine
   precision. *)
let v_overdrive p ~vgs =
  let x = (vgs -. p.vt) /. p.s_smooth in
  if x > 30.0 then vgs -. p.vt
  else p.s_smooth *. log1p (exp x)

(* Saturation factor: smooth minimum of the triode slope vds/vdsat and 1.
   m = 4 gives a SPICE-like knee without the abrupt corner of the ideal
   alpha-power model. *)
let f_sat ~vds ~vdsat =
  if vds <= 0.0 then 0.0
  else begin
    let x = vds /. vdsat in
    x /. ((1.0 +. (x ** 4.0)) ** 0.25)
  end

let ids p ~vgs ~vds =
  if vds <= 0.0 then 0.0
  else begin
    let veff = v_overdrive p ~vgs in
    let vdsat = max veff 0.03 in
    p.beta *. (veff ** p.alpha) *. f_sat ~vds ~vdsat
  end

let drain_source_current p ~nfin ~vg ~vd ~vs =
  assert (nfin > 0);
  let scale = float_of_int nfin in
  let current =
    match p.polarity with
    | Nfet ->
      if vd >= vs then ids p ~vgs:(vg -. vs) ~vds:(vd -. vs)
      else -.ids p ~vgs:(vg -. vd) ~vds:(vs -. vd)
    | Pfet ->
      if vs >= vd then -.ids p ~vgs:(vs -. vg) ~vds:(vs -. vd)
      else ids p ~vgs:(vd -. vg) ~vds:(vd -. vs)
  in
  scale *. current

let i_on p ?(vdd = Tech.vdd_nominal) () = ids p ~vgs:vdd ~vds:vdd
let i_off p ?(vdd = Tech.vdd_nominal) () = ids p ~vgs:0.0 ~vds:vdd

let on_off_ratio p ?(vdd = Tech.vdd_nominal) () =
  i_on p ~vdd () /. i_off p ~vdd ()

let subthreshold_swing p = log 10.0 *. p.s_smooth /. p.alpha *. 1000.0

let with_vt p vt = { p with vt }
