let t_ref_celsius = 25.0
let dvt_dt = -0.7e-3
let mobility_exponent = 1.5

let kelvin celsius = celsius +. 273.15

let at_temperature ~celsius (d : Device.params) =
  assert (celsius >= -40.0 && celsius <= 150.0);
  let t = kelvin celsius and t0 = kelvin t_ref_celsius in
  let ratio = t /. t0 in
  { d with
    Device.vt = max 0.02 (d.Device.vt +. (dvt_dt *. (celsius -. t_ref_celsius)));
    beta = d.Device.beta *. (ratio ** -.mobility_exponent);
    s_smooth = d.Device.s_smooth *. ratio }

let cell_at_temperature ~celsius (c : Variation.cell_sample) =
  let f = at_temperature ~celsius in
  { Variation.pull_up_l = f c.Variation.pull_up_l;
    pull_up_r = f c.Variation.pull_up_r;
    pull_down_l = f c.Variation.pull_down_l;
    pull_down_r = f c.Variation.pull_down_r;
    access_l = f c.Variation.access_l;
    access_r = f c.Variation.access_r }
