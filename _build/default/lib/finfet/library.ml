type flavor = Lvt | Hvt

let flavor_to_string = function Lvt -> "LVT" | Hvt -> "HVT"

let flavor_of_string s =
  match String.uppercase_ascii s with
  | "LVT" -> Some Lvt
  | "HVT" -> Some Hvt
  | _ -> None

type t = {
  nfet_lvt : Device.params;
  pfet_lvt : Device.params;
  nfet_hvt : Device.params;
  pfet_hvt : Device.params;
}

let default =
  lazy
    (let nfet_hvt = Calibration.calibrate_hvt_nfet () in
     let nfet_lvt = Calibration.calibrate_lvt_nfet ~hvt:nfet_hvt in
     { nfet_lvt;
       pfet_lvt = Calibration.derive_pfet nfet_lvt;
       nfet_hvt;
       pfet_hvt = Calibration.derive_pfet nfet_hvt })

let nfet t = function Lvt -> t.nfet_lvt | Hvt -> t.nfet_hvt
let pfet t = function Lvt -> t.pfet_lvt | Hvt -> t.pfet_hvt

let i_read t flavor ~vddc ~vssc =
  let n = nfet t flavor in
  Calibration.stack_read_current ~access:n ~pull_down:n
    ~vwl:Tech.vdd_nominal ~vbl:Tech.vdd_nominal ~vddc ~vssc

let fit_read_current t flavor =
  (* Fit along the paper's quoted trajectory: V_DDC pinned at its
     yield-driven value, V_SSC swept over the negative-Gnd assist range.
     (A joint 2-D sweep is not a single-variable power law: at equal
     V_DDC - V_SSC the access transistor sees different bias.) *)
  let vddc = match flavor with Lvt -> 0.640 | Hvt -> 0.550 in
  let samples = ref [] in
  for step = 0 to 24 do
    let vssc = -.0.010 *. float_of_int step in
    let i = i_read t flavor ~vddc ~vssc in
    if i > 0.0 then samples := (vddc -. vssc, i) :: !samples
  done;
  let vs = Array.of_list (List.rev_map fst !samples) in
  let is_ = Array.of_list (List.rev_map snd !samples) in
  let vt_hi = Array.fold_left min infinity vs -. 0.05 in
  Numerics.Fit.power_law ~vt_lo:0.05 ~vt_hi vs is_
