(** Compact FinFET I-V and capacitance model.

    A single smooth equation covers subthreshold through strong inversion
    (alpha-power law with an EKV-style soft-plus gate overdrive), with no
    DIBL and no channel-length modulation — matching the paper's
    observation that DIBL is negligible in these FinFETs.  Width
    quantization is explicit: all currents and capacitances scale with an
    integer fin count. *)

type polarity = Nfet | Pfet

type params = {
  name : string;          (** e.g. "nfet_hvt_7nm" *)
  polarity : polarity;
  vt : float;             (** threshold-voltage magnitude, V *)
  alpha : float;          (** velocity-saturation exponent (paper fit: 1.3) *)
  beta : float;           (** transconductance prefactor per fin, A / V^alpha *)
  s_smooth : float;       (** soft-plus smoothing voltage, V; sets the
                              effective subthreshold swing
                              SS = ln 10 * s_smooth / alpha *)
  c_gate : float;         (** gate capacitance per fin, F *)
  c_drain : float;        (** drain (junction) capacitance per fin, F *)
}

val v_overdrive : params -> vgs:float -> float
(** Smooth effective overdrive: s * ln(1 + exp((|vgs| - vt)/s)).
    Tends to [vgs - vt] above threshold and to a decaying exponential
    below. *)

val ids : params -> vgs:float -> vds:float -> float
(** Source-referenced drain current per fin for normal operation
    ([vds >= 0], both voltages magnitudes for Pfet).  Monotone in both
    arguments; zero at [vds = 0]. *)

val drain_source_current : params -> nfin:int -> vg:float -> vd:float -> vs:float -> float
(** Terminal-voltage form used by the circuit simulator: conventional
    current flowing from drain terminal to source terminal through the
    channel ([nfin] fins).  Handles source/drain symmetry (reverse
    conduction) and both polarities: a Pfet conducting normally returns a
    negative value (current flows source to drain). *)

val i_on : params -> ?vdd:float -> unit -> float
(** ON current per fin at [vgs = vds = vdd] (default technology nominal). *)

val i_off : params -> ?vdd:float -> unit -> float
(** OFF (leakage) current per fin at [vgs = 0, vds = vdd]. *)

val on_off_ratio : params -> ?vdd:float -> unit -> float

val subthreshold_swing : params -> float
(** mV/decade implied by [s_smooth] and [alpha]. *)

val with_vt : params -> float -> params
(** Copy with a replaced threshold voltage (Monte Carlo sampling hook). *)
