(** 7nm FinFET technology constants.

    Values are the ones stated in the paper's Section 5: nominal supply
    450 mV, metal pitch 43 nm (scaled from Intel 14nm/22nm ratios), wire
    capacitance 0.17 fF/um (ITRS 2012, 7nm node).  Layout-derived cell
    dimensions follow Figure 1(b): the 6T cell spans 5 metal pitches in
    width, and its height is 0.4x its width. *)

val vdd_nominal : float
(** Nominal supply voltage, 450 mV. *)

val thermal_voltage : float
(** kT/q at 300 K, ~25.85 mV. *)

val p_metal : float
(** Metal pitch, 43 nm (in meters). *)

val c_wire_per_m : float
(** Wire capacitance per meter: 0.17 fF/um = 1.7e-10 F/m. *)

val r_wire_per_m : float
(** Wire resistance per meter of the local (Mx) metal used for bitlines:
    ~100 Ohm/um at the 7nm node.  The paper's analytical model neglects
    wire resistance; this constant exists so the column-level transient
    validation ({!Sram_cell.Column}) can quantify that approximation. *)

val cell_width : float
(** 6T cell width = 5 x [p_metal] (meters). *)

val cell_height : float
(** 6T cell height = 0.4 x [cell_width] (meters). *)

val c_width : float
(** Wire capacitance across one cell width: [cell_width] x [c_wire_per_m]. *)

val c_height : float
(** Wire capacitance across one cell height: 0.4 x [c_width]. *)

val min_margin_fraction : float
(** Yield rule from the paper's Monte Carlo study: noise margins must
    exceed 35% of Vdd. *)

val min_margin : float
(** [min_margin_fraction * vdd_nominal] = 157.5 mV (the paper's delta). *)

val delta_v_sense : float
(** Sense-amplifier input swing Delta V_S = 120 mV. *)
