type corner = TT | FF | SS | FS | SF

let all = [ TT; FF; SS; FS; SF ]

let name = function
  | TT -> "TT"
  | FF -> "FF"
  | SS -> "SS"
  | FS -> "FS"
  | SF -> "SF"

let sigma_global = 0.015

(* "Fast" devices have a lower threshold.  The corner sits at 3 sigma. *)
let vt_multipliers = function
  | TT -> (0.0, 0.0)
  | FF -> (-3.0, -3.0)
  | SS -> (3.0, 3.0)
  | FS -> (-3.0, 3.0)
  | SF -> (3.0, -3.0)

let apply corner (d : Device.params) =
  let mul_n, mul_p = vt_multipliers corner in
  let mul = match d.Device.polarity with Device.Nfet -> mul_n | Device.Pfet -> mul_p in
  Device.with_vt d (max 0.02 (d.Device.vt +. (mul *. sigma_global)))

let cell corner ~nfet ~pfet =
  Variation.nominal_cell ~nfet:(apply corner nfet) ~pfet:(apply corner pfet)
