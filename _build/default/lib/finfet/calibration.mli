(** Calibration of the compact model against the paper's published anchors.

    The original work characterizes a proprietary 7nm FinFET SPICE library
    [Chen et al., S3S'14].  We do not have it, so the compact model of
    {!Device} is solved numerically to reproduce every quantitative anchor
    the paper states:

    - HVT read-current fit: I_read = b (V - V_t)^a with a = 1.3,
      b = 9.5e-5 A/V^1.3, V_t = 335 mV (Section 5) — interpreted, as in the
      paper, as the current through the series access/pull-down stack;
    - LVT ON current = 2 x HVT ON current;
    - LVT OFF current = 20 x HVT OFF current;
    - 6T cell leakage 1.692 nW (LVT) and 0.082 nW (HVT) at nominal Vdd.  *)

val read_fit_a : float
(** Exponent of the paper's read-current fit: 1.3. *)

val read_fit_b : float
(** Prefactor of the read-current fit: 9.5e-5 A/V^1.3. *)

val read_fit_vt : float
(** Threshold of the read-current fit: 0.335 V. *)

val ion_ratio_lvt_over_hvt : float
(** 2.0 — LVT drives twice the ON current of HVT. *)

val ioff_ratio_lvt_over_hvt : float
(** 20.0 — LVT leaks twenty times the OFF current of HVT. *)

val leakage_6t_lvt : float
(** 6T-LVT cell leakage at nominal Vdd: 1.692 nW. *)

val leakage_6t_hvt : float
(** 6T-HVT cell leakage at nominal Vdd: 0.082 nW. *)

val pfet_strength_ratio : float
(** P-over-N per-fin drive ratio (0.75): the pull-up is the weakest device
    of the single-fin cell, which is what makes the WL-overdrive write
    assist effective. *)

val leakage_paths_per_cell : float
(** Effective number of NFET-equivalent leakage paths in a 6T hold state:
    two OFF NFETs (one pull-down, one access) plus one OFF PFET scaled by
    [pfet_strength_ratio]. *)

val paper_read_current : vddc:float -> vssc:float -> float
(** The paper's analytic fit I_read = b (vddc - vssc - vt)^a; 0 below
    threshold. *)

val stack_read_current :
  access:Device.params -> pull_down:Device.params ->
  vwl:float -> vbl:float -> vddc:float -> vssc:float -> float
(** Read current through the series access + pull-down stack: solves the
    internal storage-node voltage by bisection of the KCL balance, then
    returns the common current.  [vwl] drives the access gate, [vbl] is the
    bitline voltage, [vddc] the pull-down gate (the opposite storage node,
    boosted under Vdd-boost assist), [vssc] the cell ground. *)

val calibrate_hvt_nfet : unit -> Device.params
(** HVT NFET meeting the read-fit and leakage anchors. *)

val calibrate_lvt_nfet : hvt:Device.params -> Device.params
(** LVT NFET meeting the ION/IOFF ratio anchors relative to [hvt]. *)

val derive_pfet : Device.params -> Device.params
(** Matching PFET: [pfet_strength_ratio] weaker drive, same Vt magnitude
    and swing; gate/drain capacitance slightly larger (hole devices). *)
