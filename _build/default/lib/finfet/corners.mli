(** Global process corners.

    Monte Carlo ({!Variation}) captures local, per-device mismatch; this
    module captures the correlated die-to-die component as classic
    five-corner analysis: each corner shifts every n-channel (p-channel)
    threshold by a signed multiple of the global sigma.  Margin and
    performance checks across corners are the standard signoff companion
    to the paper's nominal-corner optimization. *)

type corner =
  | TT  (** typical / typical *)
  | FF  (** fast n, fast p (both Vt low) *)
  | SS  (** slow n, slow p (both Vt high) *)
  | FS  (** fast n, slow p — the worst read-stability corner *)
  | SF  (** slow n, fast p — the worst write-margin corner *)

val all : corner list

val name : corner -> string

val sigma_global : float
(** Die-to-die Vt sigma (15 mV); corners sit at +-3 sigma. *)

val apply : corner -> Device.params -> Device.params
(** Shift one device's threshold according to the corner and the device's
    polarity ("fast" = lower Vt). *)

val cell : corner -> nfet:Device.params -> pfet:Device.params -> Variation.cell_sample
(** A 6T cell with every device at the corner (no local mismatch). *)
