lib/finfet/library.ml: Array Calibration Device List Numerics String Tech
