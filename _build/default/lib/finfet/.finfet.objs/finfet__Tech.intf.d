lib/finfet/tech.mli:
