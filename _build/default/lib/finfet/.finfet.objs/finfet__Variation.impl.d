lib/finfet/variation.ml: Device Numerics
