lib/finfet/tech.ml:
