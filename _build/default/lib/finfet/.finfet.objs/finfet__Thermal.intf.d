lib/finfet/thermal.mli: Device Variation
