lib/finfet/calibration.mli: Device
