lib/finfet/iv_table.ml: Array Device Numerics
