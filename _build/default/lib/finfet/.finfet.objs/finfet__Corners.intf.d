lib/finfet/corners.mli: Device Variation
