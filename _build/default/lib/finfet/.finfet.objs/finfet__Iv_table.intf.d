lib/finfet/iv_table.mli: Device
