lib/finfet/device.ml: Tech
