lib/finfet/thermal.ml: Device Variation
