lib/finfet/corners.ml: Device Variation
