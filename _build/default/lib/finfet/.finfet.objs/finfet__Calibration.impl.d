lib/finfet/calibration.ml: Device Numerics String Tech
