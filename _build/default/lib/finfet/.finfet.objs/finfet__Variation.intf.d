lib/finfet/variation.mli: Device Numerics
