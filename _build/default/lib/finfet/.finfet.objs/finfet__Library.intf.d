lib/finfet/library.mli: Device Lazy Numerics
