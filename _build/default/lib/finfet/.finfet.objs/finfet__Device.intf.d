lib/finfet/device.mli:
