(** Temperature scaling of the device model.

    The calibration anchors hold at the paper's (implicit) room-temperature
    corner; this module derates a device for operation at another junction
    temperature using the three first-order effects:

    - subthreshold swing grows linearly with absolute temperature
      (SS proportional to kT/q), which inflates OFF currents exponentially;
    - the threshold voltage falls by ~0.7 mV/K;
    - carrier mobility — hence the drive prefactor — falls as
      (T/T0)^-1.5.

    Hot silicon therefore leaks much more while driving slightly less,
    shifting the leakage-versus-switching balance that decides the
    HVT-versus-LVT question. *)

val t_ref_celsius : float
(** Calibration temperature: 25 C. *)

val dvt_dt : float
(** Threshold temperature coefficient: -0.7 mV/K. *)

val mobility_exponent : float
(** 1.5: beta scales as (T/T0)^-1.5. *)

val at_temperature : celsius:float -> Device.params -> Device.params
(** Derated copy of a device.  [celsius] in [-40, 150] (asserts). *)

val cell_at_temperature :
  celsius:float -> Variation.cell_sample -> Variation.cell_sample
(** All six transistors derated. *)
