type t = {
  table : Numerics.Interp.Table2d.t;
  v_max : float;
  floor : float;  (* additive floor so log interpolation tolerates zeros *)
}

let floor_current = 1e-20

let build ?(vgs_points = 61) ?(vds_points = 61) ?(v_max = 0.85) params =
  assert (vgs_points >= 2 && vds_points >= 2 && v_max > 0.0);
  let vgs_axis =
    Array.init vgs_points (fun i ->
        v_max *. float_of_int i /. float_of_int (vgs_points - 1))
  in
  (* Log current is nearly linear in log vds in the triode tail, so a
     geometric vds axis keeps the bilinear error bounded there; a uniform
     axis would leave the whole sub-first-gridpoint region to one cell of
     wild curvature. *)
  let vds_axis =
    let v_min = 2e-4 in
    let ratio = (v_max /. v_min) ** (1.0 /. float_of_int (vds_points - 1)) in
    Array.init vds_points (fun i -> v_min *. (ratio ** float_of_int i))
  in
  let zs =
    Array.map
      (fun vgs ->
        Array.map
          (fun vds ->
            log10 (Device.ids params ~vgs ~vds +. floor_current))
          vds_axis)
      vgs_axis
  in
  { table = Numerics.Interp.Table2d.create ~xs:vgs_axis ~ys:vds_axis zs;
    v_max;
    floor = floor_current }

let ids t ~vgs ~vds =
  if vds <= 0.0 then 0.0
  else begin
    let v = Numerics.Interp.Table2d.eval t.table ~x:vgs ~y:vds in
    max 0.0 ((10.0 ** v) -. t.floor)
  end

let max_relative_error ?(samples = 2000) ?(seed = 17) t params =
  let rng = Numerics.Rng.create ~seed in
  let worst = ref 0.0 in
  for _ = 1 to samples do
    let vgs = Numerics.Rng.uniform_range rng ~lo:0.0 ~hi:t.v_max in
    let vds = Numerics.Rng.uniform_range rng ~lo:1e-3 ~hi:t.v_max in
    let exact = Device.ids params ~vgs ~vds in
    let approx = ids t ~vgs ~vds in
    if exact > 1e-15 || approx > 1e-15 then begin
      let err = abs_float (approx -. exact) /. max exact 1e-15 in
      if err > !worst then worst := err
    end
  done;
  !worst
