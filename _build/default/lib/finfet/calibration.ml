let read_fit_a = 1.3
let read_fit_b = 9.5e-5
let read_fit_vt = 0.335
let ion_ratio_lvt_over_hvt = 2.0
let ioff_ratio_lvt_over_hvt = 20.0
let leakage_6t_lvt = 1.692e-9
let leakage_6t_hvt = 0.082e-9
let pfet_strength_ratio = 0.75
let leakage_paths_per_cell = 2.0 +. pfet_strength_ratio

let paper_read_current ~vddc ~vssc =
  let drive = vddc -. vssc -. read_fit_vt in
  if drive <= 0.0 then 0.0 else read_fit_b *. (drive ** read_fit_a)

(* Per-fin capacitances: chosen once for the technology (aF-scale values
   typical of 7nm fins); the paper never publishes its device caps, only
   wire caps, so these set the absolute delay scale while leaving every
   relative result anchored. *)
let c_gate_n = 0.020e-15
let c_drain_n = 0.035e-15
let c_gate_p = 0.022e-15
let c_drain_p = 0.038e-15

let stack_read_current ~access ~pull_down ~vwl ~vbl ~vddc ~vssc =
  if vbl <= vssc then 0.0
  else begin
    (* KCL at the internal storage node q: access current in = pull-down
       current out.  The balance is monotone in vq, so bisection is safe. *)
    let balance vq =
      let i_in = Device.ids access ~vgs:(vwl -. vq) ~vds:(vbl -. vq) in
      let i_out = Device.ids pull_down ~vgs:(vddc -. vssc) ~vds:(vq -. vssc) in
      i_in -. i_out
    in
    let vq =
      match Numerics.Roots.find_bracket balance ~lo:vssc ~hi:vbl ~n:64 with
      | Some (lo, hi) -> Numerics.Roots.brent ~tol:1e-12 balance ~lo ~hi
      | None -> vssc  (* both currents negligible: report the pull-down limit *)
    in
    Device.ids pull_down ~vgs:(vddc -. vssc) ~vds:(vq -. vssc)
  end

(* Leakage budget per flavor: paper cell leakage split over the effective
   OFF paths at nominal Vdd. *)
let ioff_target_hvt =
  leakage_6t_hvt /. Tech.vdd_nominal /. leakage_paths_per_cell

let ioff_target_lvt =
  leakage_6t_lvt /. Tech.vdd_nominal /. leakage_paths_per_cell

let base name polarity ~vt ~beta ~s_smooth =
  let open Device in
  match polarity with
  | Nfet ->
    { name; polarity; vt; alpha = read_fit_a; beta; s_smooth;
      c_gate = c_gate_n; c_drain = c_drain_n }
  | Pfet ->
    { name; polarity; vt; alpha = read_fit_a; beta; s_smooth;
      c_gate = c_gate_p; c_drain = c_drain_p }

let solve_s_for_ioff ~proto ~target =
  (* OFF current grows monotonically with the smoothing voltage (softer
     subthreshold exponent), so bracket + Brent. *)
  let objective s =
    Device.i_off { proto with Device.s_smooth = s } () -. target
  in
  Numerics.Roots.brent ~tol:1e-9 objective ~lo:0.010 ~hi:0.120

let calibrate_hvt_nfet () =
  (* Step 1: a provisional device with beta equal to the paper fit's b. *)
  let rec refine proto iter =
    (* Scale beta so the simulated stack matches the paper fit at the
       reference read condition (VDDC = 550 mV, VSSC = 0, WL = BL = Vdd).
       Both stack devices scale together, so the internal node voltage is
       scale-invariant and one ratio correction suffices per pass. *)
    let target = paper_read_current ~vddc:0.550 ~vssc:0.0 in
    let got =
      stack_read_current ~access:proto ~pull_down:proto
        ~vwl:Tech.vdd_nominal ~vbl:Tech.vdd_nominal ~vddc:0.550 ~vssc:0.0
    in
    let beta = proto.Device.beta *. (target /. got) in
    let proto = { proto with Device.beta } in
    (* Step 2: set the subthreshold smoothing to hit the leakage anchor. *)
    let s_smooth = solve_s_for_ioff ~proto ~target:ioff_target_hvt in
    let proto = { proto with Device.s_smooth } in
    (* beta and s interact weakly through the soft-plus; two passes settle
       well below 0.1%. *)
    if iter >= 2 then proto else refine proto (iter + 1)
  in
  refine (base "nfet_hvt_7nm" Device.Nfet ~vt:read_fit_vt ~beta:read_fit_b ~s_smooth:0.040) 0

let calibrate_lvt_nfet ~hvt =
  let ion_target = ion_ratio_lvt_over_hvt *. Device.i_on hvt () in
  let rec refine proto iter =
    (* Lower the threshold until the ON-current ratio holds... *)
    let objective vt = Device.i_on { proto with Device.vt } () -. ion_target in
    let vt = Numerics.Roots.brent ~tol:1e-9 objective ~lo:0.05 ~hi:hvt.Device.vt in
    let proto = { proto with Device.vt } in
    (* ...then the swing until the OFF-current ratio holds. *)
    let s_smooth = solve_s_for_ioff ~proto ~target:ioff_target_lvt in
    let proto = { proto with Device.s_smooth } in
    if iter >= 2 then proto else refine proto (iter + 1)
  in
  refine { hvt with Device.name = "nfet_lvt_7nm" } 0

let derive_pfet nfet =
  let open Device in
  { nfet with
    name = (match nfet.polarity with
        | Nfet | Pfet -> String.concat "" [ "p"; String.sub nfet.name 1 (String.length nfet.name - 1) ]);
    polarity = Pfet;
    beta = pfet_strength_ratio *. nfet.beta;
    c_gate = c_gate_p;
    c_drain = c_drain_p }
