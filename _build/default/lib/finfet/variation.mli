(** Process-variation sampling for Monte Carlo yield analysis.

    Random dopant / work-function fluctuation in FinFETs is dominated by
    threshold-voltage variation; the paper's yield rule ("margins above 35%
    of Vdd") comes from such a Monte Carlo study.  We model per-device Vt
    as an independent Gaussian around the nominal value. *)

val sigma_vt_default : float
(** Default per-fin Vt standard deviation (20 mV, a typical 7nm value). *)

val sample_device :
  ?sigma_vt:float -> Numerics.Rng.t -> Device.params -> Device.params
(** Draw one varied instance of a device (Vt perturbed, clipped to stay
    positive). *)

type cell_sample = {
  pull_up_l : Device.params;
  pull_up_r : Device.params;
  pull_down_l : Device.params;
  pull_down_r : Device.params;
  access_l : Device.params;
  access_r : Device.params;
}
(** Six independently varied transistors of a 6T cell. *)

val sample_cell :
  ?sigma_vt:float ->
  Numerics.Rng.t ->
  nfet:Device.params ->
  pfet:Device.params ->
  cell_sample

val nominal_cell : nfet:Device.params -> pfet:Device.params -> cell_sample
(** All six devices at nominal parameters. *)
