(** Banked-memory co-optimization: an architecture level above the paper.

    Large capacities are not built as one monolithic array; they are split
    into banks reached over an H-tree, trading shorter word/bit lines
    against interconnect delay/energy and the idle banks' leakage.  This
    module extends the paper's co-optimization with the bank count as one
    more architecture variable: every candidate bank count re-runs the
    full array-level search for the per-bank organization and assist
    voltages, then the bank-level metrics are assembled as

      D = D_htree + D_bank
      E = alpha E_sw,bank + E_htree + M_total P_leak,cell D

    (leakage accrues over the whole cycle in every bank, accessed or
    not). *)

type bank_design = {
  banks : int;                        (** power of two *)
  per_bank : Opt.Exhaustive.result;   (** the array-level optimum *)
  htree_length : float;               (** route length, m *)
  d_htree : float;
  e_htree : float;                    (** per access, address + W data bits *)
  d_total : float;
  e_total : float;
  edp : float;
  area : float;                       (** cell-array silicon, m^2 *)
}

val evaluate_banking :
  ?space:Opt.Space.t ->
  ?w:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Opt.Space.method_ ->
  banks:int ->
  unit ->
  bank_design
(** Metrics for one bank count.
    @raise Invalid_argument unless [banks] is a power of two dividing the
    capacity into power-of-two banks. *)

val optimize :
  ?space:Opt.Space.t ->
  ?w:int ->
  ?max_banks:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Opt.Space.method_ ->
  unit ->
  bank_design * bank_design list
(** Best EDP bank count (1 .. max_banks, default 16, powers of two) plus
    the whole sweep for reporting. *)
