type t = {
  delay_per_m : float;
  energy_per_m : float;
  repeater_overhead : float;
}

let of_technology ~lib =
  let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt in
  let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt in
  let r_w = Finfet.Tech.r_wire_per_m in
  let c_w = Finfet.Tech.c_wire_per_m in
  (* Single-fin repeater drive and load; the optimal-repeater delay is
     invariant to the chosen size. *)
  let r_rep = max (Gates.Logical_effort.r_eff nfet) (Gates.Logical_effort.r_eff pfet) in
  let c_rep =
    nfet.Finfet.Device.c_gate +. pfet.Finfet.Device.c_gate
    +. nfet.Finfet.Device.c_drain +. pfet.Finfet.Device.c_drain
  in
  let repeater_overhead = 0.4 in
  { delay_per_m = 2.0 *. sqrt (r_w *. c_w *. r_rep *. c_rep);
    energy_per_m =
      (1.0 +. repeater_overhead) *. c_w *. Finfet.Tech.vdd_nominal
      *. Finfet.Tech.vdd_nominal;
    repeater_overhead }

let route_length ~total_area =
  assert (total_area >= 0.0);
  sqrt total_area

let delay t ~length = t.delay_per_m *. length

let energy t ~length = t.energy_per_m *. length
