type bank_design = {
  banks : int;
  per_bank : Opt.Exhaustive.result;
  htree_length : float;
  d_htree : float;
  e_htree : float;
  d_total : float;
  e_total : float;
  edp : float;
  area : float;
}

let evaluate_banking ?space ?(w = 64) ~env ~capacity_bits ~method_ ~banks () =
  if not (Array_model.Geometry.is_power_of_two banks) then
    invalid_arg "Banked.evaluate_banking: banks must be a power of two";
  if capacity_bits mod banks <> 0
     || not (Array_model.Geometry.is_power_of_two (capacity_bits / banks))
  then invalid_arg "Banked.evaluate_banking: capacity does not split evenly";
  let bank_bits = capacity_bits / banks in
  let per_bank =
    Opt.Exhaustive.search ?space ~w ~env ~capacity_bits:bank_bits ~method_ ()
  in
  let best = per_bank.Opt.Exhaustive.best in
  let m = best.Opt.Exhaustive.metrics in
  let bank_area = Array_model.Geometry.area best.Opt.Exhaustive.geometry in
  let area = float_of_int banks *. bank_area in
  let tree = Htree.of_technology ~lib:env.Array_model.Array_eval.lib in
  (* Every configuration pays the route from the port across its own
     footprint — a monolithic array still has to get address and data to
     its far corner, so banking is judged on the array-versus-leakage
     trade-off, not on a free ride for banks = 1. *)
  let htree_length = Htree.route_length ~total_area:area in
  let d_htree = Htree.delay tree ~length:htree_length in
  (* Address plus data wires toggle; roughly half the W data bits switch. *)
  let toggling_wires =
    let address_bits =
      int_of_float (ceil (log (float_of_int capacity_bits) /. log 2.0))
    in
    float_of_int address_bits +. (0.5 *. float_of_int w)
  in
  let e_htree = toggling_wires *. Htree.energy tree ~length:htree_length in
  let d_total = d_htree +. m.Array_model.Array_eval.d_array in
  (* Rebuild the energy from its parts: the accessed bank's switching
     energy (alpha-weighted as in Equation (5)), the tree, and leakage of
     every cell in every bank over the whole (longer) cycle. *)
  let p_leak_cell =
    env.Array_model.Array_eval.periphery.Array_model.Periphery.p_leak_cell
  in
  let e_leak_total = float_of_int capacity_bits *. p_leak_cell *. d_total in
  let e_total =
    (env.Array_model.Array_eval.alpha
     *. (m.Array_model.Array_eval.e_switching +. e_htree))
    +. e_leak_total
  in
  { banks; per_bank; htree_length; d_htree; e_htree; d_total; e_total;
    edp = e_total *. d_total; area }

let optimize ?space ?w ?(max_banks = 16) ~env ~capacity_bits ~method_ () =
  let rec bank_counts b acc =
    if b > max_banks || capacity_bits / b < 512 then List.rev acc
    else bank_counts (2 * b) (b :: acc)
  in
  let candidates = bank_counts 1 [] in
  assert (candidates <> []);
  let designs =
    List.map
      (fun banks -> evaluate_banking ?space ?w ~env ~capacity_bits ~method_ ~banks ())
      candidates
  in
  let best =
    List.fold_left
      (fun acc d -> if d.edp < acc.edp then d else acc)
      (List.hd designs) (List.tl designs)
  in
  (best, designs)
