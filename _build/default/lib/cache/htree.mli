(** Repeatered global interconnect for banked memories.

    Banks are reached over an H-tree; each route is a repeatered wire whose
    delay per unit length is the classic optimum
    2 sqrt(R'_w C'_w R_rep C_rep) — independent of the repeater size once
    segments are sized optimally — and whose energy per unit length is the
    wire charge plus a repeater-capacitance overhead.  Technology constants
    come from {!Finfet.Tech}; the repeater device is the LVT inverter. *)

type t = {
  delay_per_m : float;   (** s/m of optimally repeatered wire *)
  energy_per_m : float;  (** J/m per full-swing transition *)
  repeater_overhead : float;  (** fraction of wire cap added by repeaters *)
}

val of_technology : lib:Finfet.Library.t -> t

val route_length : total_area:float -> float
(** Root-to-leaf route length of an H-tree over a layout of the given
    area: the half-perimeter of the square equivalent,
    sqrt(area) (geometric series of the H-tree segment lengths). *)

val delay : t -> length:float -> float

val energy : t -> length:float -> float
(** One address/data transition over the route.  Callers scale by the
    number of toggling wires (address + data bus width). *)
