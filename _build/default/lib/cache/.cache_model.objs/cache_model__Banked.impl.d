lib/cache/banked.ml: Array_model Htree List Opt
