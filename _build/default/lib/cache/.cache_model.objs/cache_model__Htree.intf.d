lib/cache/htree.mli: Finfet
