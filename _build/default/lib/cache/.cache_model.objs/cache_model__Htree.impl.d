lib/cache/htree.ml: Finfet Gates
