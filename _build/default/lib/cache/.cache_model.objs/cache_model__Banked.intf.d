lib/cache/banked.mli: Array_model Opt
