(** End-to-end array simulation: a complete n_r x n_c grid of
    transistor-level 6T cells read in one transient.

    Everything upstream models the array analytically; this module is the
    ground truth it is checked against.  The netlist instantiates every
    cell (six FETs plus storage caps), per-column bitline pairs with
    Table-1 capacitances, the accessed row's boosted rails, and the
    word-line step — then runs one read and verifies, at once:

    - the accessed column's bitline develops Delta V_S in about the
      analytic time;
    - the accessed cell is disturbed but not flipped (read stability);
    - the other cells of the accessed row (selected but unsensed) retain;
    - unselected rows retain untouched.

    With the sparse DC path this stays tractable up to a few hundred
    cells; the test suite runs an 8 x 4 grid (~110 unknowns). *)

type result = {
  sensed_delay : float;      (** accessed BL falling by Delta V_S, s *)
  analytic_delay : float;    (** the Equation (1) prediction *)
  relative_error : float;
  accessed_retains : bool;
  row_mates_retain : bool;   (** other columns of the accessed row *)
  unselected_retain : bool;  (** all cells of the other rows *)
  unknowns : int;            (** MNA system size (diagnostics) *)
}

val read_experiment :
  ?nr:int ->
  ?nc:int ->
  ?t_stop:float ->
  cell:Finfet.Variation.cell_sample ->
  Sram6t.condition ->
  result
(** Default grid 8 x 4.  All cells store 0; row 0 is accessed with the
    condition's rails (boost / negative Gnd applied to that row only, as
    the paper's per-row rail multiplexers do); column 0 is the sensed
    one.  [t_stop] defaults to 6x the analytic delay. *)

type write_result = {
  flipped : bool;            (** the target cell took the new value *)
  write_delay : float;       (** WL at 50%% Vdd to Q/QB crossing, s *)
  mates_survive : bool;      (** half-selected row mates keep their data *)
  others_survive : bool;     (** unselected rows keep their data *)
  w_unknowns : int;
}

val write_experiment :
  ?nr:int ->
  ?nc:int ->
  ?t_stop:float ->
  cell:Finfet.Variation.cell_sample ->
  vwl:float ->
  unit ->
  write_result
(** Write a 1 into the (0,0) cell (initially 0, like every other cell)
    with the word line overdriven to [vwl]: column 0's bitlines are driven
    to the write value, the other columns stay precharged, so the row
    mates undergo the half-select (pseudo-read) disturb this experiment
    verifies they survive. *)
