(** Monte Carlo yield analysis over process variation.

    The paper derives its 35%%-of-Vdd margin rule from a Monte Carlo study
    and mentions the accurate constraint form
    min((mu - k sigma) over HSNM, RSNM, WM) >= 0.  This module implements
    that analysis so the k-sigma constraint can be used as an alternative
    to the simplified threshold (an ablation called out in DESIGN.md). *)

type margin_samples = {
  hsnm : float array;
  rsnm : float array;
  wm : float array;
}

val sample_margins :
  ?sigma_vt:float ->
  ?points:int ->
  seed:int ->
  n:int ->
  nfet:Finfet.Device.params ->
  pfet:Finfet.Device.params ->
  read_condition:Sram6t.condition ->
  write_condition:Sram6t.condition ->
  unit ->
  margin_samples
(** Draw [n] varied cells and measure all three margins of each.  HSNM is
    measured at [read_condition.vdd] with no assists.  [points] controls
    butterfly resolution (default 41 — coarser than single-shot analyses,
    since MC cost is n x 2 curves). *)

type yield_summary = {
  mu_hsnm : float;
  sigma_hsnm : float;
  mu_rsnm : float;
  sigma_rsnm : float;
  mu_wm : float;
  sigma_wm : float;
  worst_mu_minus_k_sigma : float;
}

val summarize : k:float -> margin_samples -> yield_summary

val passes_k_sigma : k:float -> margin_samples -> bool
(** The paper's accurate constraint:
    min over margins of (mu - k sigma) >= 0. *)

val yield_fraction : delta:float -> margin_samples -> float
(** Fraction of sampled cells whose three margins all exceed [delta] —
    the empirical counterpart of the simplified constraint. *)
