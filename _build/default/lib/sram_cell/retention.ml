let retention_voltage ?(margin_fraction = Finfet.Tech.min_margin_fraction)
    ?(points = 41) ?(tol = 2e-3) ~cell () =
  let vdd_nom = Finfet.Tech.vdd_nominal in
  let gap vdd = Margins.hold_snm ~points ~cell vdd -. (margin_fraction *. vdd) in
  if gap vdd_nom < 0.0 then vdd_nom
  else begin
    (* The normalized margin is monotone in Vdd over the technology range;
       find the lowest supply still meeting the fraction. *)
    match Numerics.Roots.find_bracket gap ~lo:0.05 ~hi:vdd_nom ~n:16 with
    | None -> 0.05 (* meets the rule over the whole range *)
    | Some (lo, hi) -> Numerics.Roots.bisect ~tol gap ~lo ~hi
  end

type standby_summary = {
  v_retention : float;
  v_standby : float;
  p_active : float;
  p_standby : float;
  savings : float;
}

let standby ?(guard_band = 0.050) ?(points = 41) ~cell () =
  let v_retention = retention_voltage ~points ~cell () in
  let v_standby = min Finfet.Tech.vdd_nominal (v_retention +. guard_band) in
  let p_active = Leakage.power ~cell () in
  let p_standby = Leakage.power ~vdd:v_standby ~cell () in
  { v_retention; v_standby; p_active; p_standby;
    savings = 1.0 -. (p_standby /. p_active) }
