lib/sram_cell/montecarlo.ml: Array Finfet Margins Numerics Sram6t
