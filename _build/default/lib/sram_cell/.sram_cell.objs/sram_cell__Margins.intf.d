lib/sram_cell/margins.mli: Finfet Sram6t
