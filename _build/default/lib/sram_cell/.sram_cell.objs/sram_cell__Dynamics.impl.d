lib/sram_cell/dynamics.ml: Array Spice Sram6t
