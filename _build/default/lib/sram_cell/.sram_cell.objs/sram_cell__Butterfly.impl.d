lib/sram_cell/butterfly.ml: Array Numerics Spice Sram6t
