lib/sram_cell/dynamic_stability.ml: Array Spice Sram6t
