lib/sram_cell/butterfly.mli: Finfet Sram6t
