lib/sram_cell/column.mli: Finfet Sram6t
