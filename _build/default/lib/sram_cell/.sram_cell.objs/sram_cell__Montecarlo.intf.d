lib/sram_cell/montecarlo.mli: Finfet Sram6t
