lib/sram_cell/leakage.mli: Finfet Sram6t
