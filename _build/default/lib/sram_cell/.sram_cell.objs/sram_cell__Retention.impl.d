lib/sram_cell/retention.ml: Finfet Leakage Margins Numerics
