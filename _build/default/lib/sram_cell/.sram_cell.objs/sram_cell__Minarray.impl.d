lib/sram_cell/minarray.ml: Array Finfet Float Netlist Printf Spice Sram6t Transient
