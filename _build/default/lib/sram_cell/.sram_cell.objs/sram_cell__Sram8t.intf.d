lib/sram_cell/sram8t.mli: Finfet Sram6t
