lib/sram_cell/retention.mli: Finfet
