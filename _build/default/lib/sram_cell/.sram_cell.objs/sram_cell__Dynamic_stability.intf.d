lib/sram_cell/dynamic_stability.mli: Finfet Sram6t
