lib/sram_cell/sram6t.ml: Array Finfet Netlist Option Spice
