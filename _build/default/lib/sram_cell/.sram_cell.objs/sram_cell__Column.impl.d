lib/sram_cell/column.ml: Device Finfet Float Lazy List Netlist Printf Spice Sram6t Tech Variation
