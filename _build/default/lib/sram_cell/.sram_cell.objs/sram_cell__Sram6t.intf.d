lib/sram_cell/sram6t.mli: Finfet Spice
