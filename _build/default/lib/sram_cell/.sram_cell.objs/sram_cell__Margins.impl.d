lib/sram_cell/margins.ml: Butterfly Sram6t
