lib/sram_cell/dynamics.mli: Finfet Sram6t
