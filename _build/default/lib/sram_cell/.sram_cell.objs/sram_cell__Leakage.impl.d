lib/sram_cell/leakage.ml: Array Finfet List Spice Sram6t
