lib/sram_cell/stat_timing.mli: Column Finfet Sram6t
