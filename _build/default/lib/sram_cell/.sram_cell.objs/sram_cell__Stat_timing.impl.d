lib/sram_cell/stat_timing.ml: Array Column Finfet Numerics Sram6t
