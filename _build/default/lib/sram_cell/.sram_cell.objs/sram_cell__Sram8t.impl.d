lib/sram_cell/sram8t.ml: Array Dc Finfet List Margins Netlist Spice
