lib/sram_cell/minarray.mli: Finfet Sram6t
