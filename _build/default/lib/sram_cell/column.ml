type config = {
  nr : int;
  n_pre : int;
  n_wr : int;
  segments : int;
  with_wire_resistance : bool;
}

let default_config =
  { nr = 64; n_pre = 1; n_wr = 1; segments = 8; with_wire_resistance = true }

let bl_capacitance ~cell config =
  let open Finfet in
  let c_dn = cell.Variation.access_l.Device.c_drain in
  let c_dp = cell.Variation.pull_up_l.Device.c_drain in
  (* Table 1, no-mux branch: n_r (C_height + C_dn) + (N_pre + 1) C_dp
     + N_wr (C_dn + C_dp) + C_dp. *)
  (float_of_int config.nr *. (Tech.c_height +. c_dn))
  +. (float_of_int (config.n_pre + 1) *. c_dp)
  +. (float_of_int config.n_wr *. (c_dn +. c_dp))
  +. c_dp

let read_current ~cell (condition : Sram6t.condition) =
  Finfet.Calibration.stack_read_current
    ~access:cell.Finfet.Variation.access_l
    ~pull_down:cell.Finfet.Variation.pull_down_l
    ~vwl:condition.Sram6t.vwl ~vbl:condition.Sram6t.vbl
    ~vddc:condition.Sram6t.vddc ~vssc:condition.Sram6t.vssc

let analytic_delay ~cell config condition =
  let i = read_current ~cell condition in
  if i <= 0.0 then infinity
  else bl_capacitance ~cell config *. Finfet.Tech.delta_v_sense /. i

type result = {
  analytic : float;
  simulated : float;
  relative_error : float;
}

let validate ?t_stop ~cell config (condition : Sram6t.condition) =
  assert (config.segments >= 1 && config.nr >= 1);
  let open Spice in
  let n = Netlist.create () in
  (* Rails. *)
  let cvdd = Netlist.fresh_node n "cvdd" in
  let cvss = Netlist.fresh_node n "cvss" in
  let wl = Netlist.fresh_node n "wl" in
  let blb = Netlist.fresh_node n "blb" in
  Netlist.vdc n ~plus:cvdd ~minus:Netlist.ground ~volts:condition.Sram6t.vddc;
  Netlist.vdc n ~plus:cvss ~minus:Netlist.ground ~volts:condition.Sram6t.vssc;
  Netlist.vdc n ~plus:wl ~minus:Netlist.ground ~volts:condition.Sram6t.vwl;
  Netlist.vdc n ~plus:blb ~minus:Netlist.ground ~volts:condition.Sram6t.vblb;
  (* Bitline ladder: sense node (index 0, periphery end) to far node.  The
     floating line carries the full Table 1 capacitance, distributed. *)
  let sense = Netlist.fresh_node n "bl_sense" in
  let rec extend node k =
    if k = 0 then node
    else begin
      let next = Netlist.fresh_node n (Printf.sprintf "bl_%d" k) in
      if config.with_wire_resistance then begin
        let length = float_of_int config.nr *. Finfet.Tech.cell_height in
        let r_total = length *. Finfet.Tech.r_wire_per_m in
        Netlist.resistor n ~plus:node ~minus:next
          ~ohms:(r_total /. float_of_int config.segments)
      end
      else
        (* A tiny series resistance keeps the ladder structure without
           modelling the metal. *)
        Netlist.resistor n ~plus:node ~minus:next ~ohms:0.1;
      extend next (k - 1)
    end
  in
  let far = extend sense config.segments in
  let c_total = bl_capacitance ~cell config in
  let c_segment = c_total /. float_of_int (config.segments + 1) in
  (* Ladder nodes are consecutive integers from [sense] to [far]. *)
  for node = sense to far do
    Netlist.capacitor n ~plus:node ~minus:Netlist.ground ~farads:c_segment
  done;
  (* The accessed cell at the far end, storing 0 on the BL side. *)
  let q = Netlist.fresh_node n "q" in
  let qb = Netlist.fresh_node n "qb" in
  let open Finfet.Variation in
  Netlist.fet n ~params:cell.pull_up_l ~gate:qb ~drain:q ~source:cvdd ();
  Netlist.fet n ~params:cell.pull_down_l ~gate:qb ~drain:q ~source:cvss ();
  Netlist.fet n ~params:cell.access_l ~gate:wl ~drain:far ~source:q ();
  Netlist.fet n ~params:cell.pull_up_r ~gate:q ~drain:qb ~source:cvdd ();
  Netlist.fet n ~params:cell.pull_down_r ~gate:q ~drain:qb ~source:cvss ();
  Netlist.fet n ~params:cell.access_r ~gate:wl ~drain:blb ~source:qb ();
  Netlist.capacitor n ~plus:q ~minus:Netlist.ground
    ~farads:(Sram6t.storage_node_cap cell);
  Netlist.capacitor n ~plus:qb ~minus:Netlist.ground
    ~farads:(Sram6t.storage_node_cap cell);
  let analytic = analytic_delay ~cell config condition in
  let t_stop = match t_stop with Some t -> t | None -> 6.0 *. analytic in
  let vdd = condition.Sram6t.vdd in
  let ic =
    (q, condition.Sram6t.vssc)
    :: (qb, condition.Sram6t.vddc)
    :: List.init (far - sense + 1) (fun i -> (sense + i, vdd))
  in
  let trace =
    Spice.Transient.run ~dt:(t_stop /. 500.0) ~ic ~t_stop n
  in
  let simulated =
    match
      Spice.Transient.crossing_time trace ~node:sense
        ~threshold:(vdd -. Finfet.Tech.delta_v_sense) ~direction:`Falling
    with
    | Some t -> t
    | None -> infinity
  in
  { analytic; simulated;
    relative_error =
      (if Float.is_finite simulated then (simulated -. analytic) /. simulated
       else infinity) }

let periphery_devices () =
  let lib = Lazy.force Finfet.Library.default in
  (Finfet.Library.nfet lib Finfet.Library.Lvt,
   Finfet.Library.pfet lib Finfet.Library.Lvt)

let i_on_tg_per_fin () =
  let nfet, pfet = periphery_devices () in
  let vdd = Finfet.Tech.vdd_nominal in
  Finfet.Device.ids nfet ~vgs:vdd ~vds:(0.5 *. vdd)
  +. Finfet.Device.ids pfet ~vgs:vdd ~vds:(0.5 *. vdd)

let analytic_write_delay ~cell config =
  let vdd = Finfet.Tech.vdd_nominal in
  bl_capacitance ~cell config *. vdd
  /. (0.50 *. float_of_int config.n_wr *. i_on_tg_per_fin ())

let validate_write ?t_stop ~cell config =
  assert (config.segments >= 1 && config.nr >= 1);
  let open Spice in
  let nfet, pfet = periphery_devices () in
  let vdd = Finfet.Tech.vdd_nominal in
  let n = Netlist.create () in
  let vdd_node = Netlist.fresh_node n "vdd" in
  Netlist.vdc n ~plus:vdd_node ~minus:Netlist.ground ~volts:vdd;
  (* The ladder, near (write-buffer) end first. *)
  let near = Netlist.fresh_node n "bl_near" in
  let rec extend node k =
    if k = 0 then node
    else begin
      let next = Netlist.fresh_node n (Printf.sprintf "bl_%d" k) in
      if config.with_wire_resistance then begin
        let length = float_of_int config.nr *. Finfet.Tech.cell_height in
        Netlist.resistor n ~plus:node ~minus:next
          ~ohms:(length *. Finfet.Tech.r_wire_per_m
                 /. float_of_int config.segments)
      end
      else Netlist.resistor n ~plus:node ~minus:next ~ohms:0.1;
      extend next (k - 1)
    end
  in
  let far = extend near config.segments in
  let c_segment =
    bl_capacitance ~cell config /. float_of_int (config.segments + 1)
  in
  for node = near to far do
    Netlist.capacitor n ~plus:node ~minus:Netlist.ground ~farads:c_segment
  done;
  (* The write transmission gate pulls the near end to the (grounded)
     write-driver output; both halves fully on. *)
  Netlist.fet n ~params:nfet ~nfin:config.n_wr ~gate:vdd_node ~drain:near
    ~source:Netlist.ground ();
  Netlist.fet n ~params:pfet ~nfin:config.n_wr ~gate:Netlist.ground ~drain:near
    ~source:Netlist.ground ();
  let analytic = analytic_write_delay ~cell config in
  let t_stop = match t_stop with Some t -> t | None -> 8.0 *. analytic in
  let ic = List.init (far - near + 1) (fun i -> (near + i, vdd)) in
  let trace = Spice.Transient.run ~dt:(t_stop /. 500.0) ~ic ~t_stop n in
  (* Full-swing write: time to a 90% swing at the far cell, the natural
     transient counterpart of Table 2's dV = Vdd budget. *)
  let simulated =
    match
      Spice.Transient.crossing_time trace ~node:far ~threshold:(0.1 *. vdd)
        ~direction:`Falling
    with
    | Some t -> t
    | None -> infinity
  in
  { analytic; simulated;
    relative_error =
      (if Float.is_finite simulated then (simulated -. analytic) /. simulated
       else infinity) }
