(** Cell leakage power in the hold state (Figure 2(b)).

    The cell sits with WL off and bitlines precharged; the dissipated
    power is the sum of the power delivered by all sources (supply rail,
    bitline, and — negligibly — the others). *)

val power :
  ?vdd:float -> cell:Finfet.Variation.cell_sample -> unit -> float
(** Total leakage power of one cell at the given supply (default nominal),
    in watts. *)

val power_at_condition :
  cell:Finfet.Variation.cell_sample -> Sram6t.condition -> float
(** Leakage under an arbitrary static condition (used to price the
    retention cost of assist rails). *)
