let power_at_condition ~cell condition =
  let netlist, nodes = Sram6t.build ~cell condition in
  let dim =
    Spice.Netlist.num_nodes netlist - 1 + Spice.Netlist.vsource_count netlist
  in
  let x0 = Array.make dim 0.0 in
  x0.(nodes.Sram6t.q - 1) <- condition.Sram6t.vssc;
  x0.(nodes.Sram6t.qb - 1) <- condition.Sram6t.vddc;
  x0.(nodes.Sram6t.cvdd - 1) <- condition.Sram6t.vddc;
  x0.(nodes.Sram6t.cvss - 1) <- condition.Sram6t.vssc;
  x0.(nodes.Sram6t.wl - 1) <- condition.Sram6t.vwl;
  x0.(nodes.Sram6t.bl - 1) <- condition.Sram6t.vbl;
  x0.(nodes.Sram6t.blb - 1) <- condition.Sram6t.vblb;
  let s = Spice.Dc.operating_point ~x0 netlist in
  (* Power delivered by each source: the branch current flows into the +
     terminal through the source, so delivery is -V * I. *)
  let sources =
    List.filter_map
      (function
        | Spice.Netlist.Vsource { volts; _ } ->
          Some (Spice.Netlist.waveform_at volts 0.0)
        | Spice.Netlist.Resistor _ | Spice.Netlist.Capacitor _
        | Spice.Netlist.Isource _ | Spice.Netlist.Fet _ -> None)
      (Spice.Netlist.elements netlist)
  in
  List.fold_left ( +. ) 0.0
    (List.mapi (fun k v -> -.v *. s.Spice.Dc.source_currents.(k)) sources)

let power ?(vdd = Finfet.Tech.vdd_nominal) ~cell () =
  power_at_condition ~cell (Sram6t.hold ~vdd ())
