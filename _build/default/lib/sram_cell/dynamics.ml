type write_delay_result = {
  delay : float;
  flipped : bool;
  wl_cross_time : float;
}

let write_delay ?(t_stop = 30e-12) ?(wl_rise = 1e-12) ~cell condition =
  let wl_wave =
    Spice.Netlist.Step
      { t_delay = 1e-12; t_rise = wl_rise; v0 = 0.0; v1 = condition.Sram6t.vwl }
  in
  let netlist, nodes = Sram6t.build ~with_node_caps:true ~wl_wave ~cell condition in
  let vdd = condition.Sram6t.vdd in
  let trace =
    Spice.Transient.run ~dt:(t_stop /. 600.0)
      ~ic:[ (nodes.Sram6t.q, vdd); (nodes.Sram6t.qb, 0.0) ]
      ~t_stop netlist
  in
  let wl_cross_time =
    match
      Spice.Transient.crossing_time trace ~node:nodes.Sram6t.wl
        ~threshold:(0.5 *. vdd) ~direction:`Rising
    with
    | Some t -> t
    | None -> 1e-12 +. (0.5 *. wl_rise)
  in
  (* Q (falling) and QB (rising) cross where their difference changes
     sign. *)
  let q = Spice.Transient.node_trace trace nodes.Sram6t.q in
  let qb = Spice.Transient.node_trace trace nodes.Sram6t.qb in
  let n = Array.length trace.Spice.Transient.times in
  let rec find k =
    if k >= n then None
    else if q.(k) -. qb.(k) <= 0.0 then begin
      let d_prev = q.(k - 1) -. qb.(k - 1) in
      let d_cur = q.(k) -. qb.(k) in
      let frac = if d_cur = d_prev then 0.0 else d_prev /. (d_prev -. d_cur) in
      let t_prev = trace.Spice.Transient.times.(k - 1) in
      let t_cur = trace.Spice.Transient.times.(k) in
      Some (t_prev +. (frac *. (t_cur -. t_prev)))
    end
    else find (k + 1)
  in
  match find 1 with
  | Some t_cross ->
    { delay = t_cross -. wl_cross_time; flipped = true; wl_cross_time }
  | None -> { delay = infinity; flipped = false; wl_cross_time }

let read_current ~cell condition =
  (* Worst-case accessed column: Q = 0, bitline precharged; the BL source
     current is the discharge current.  Current convention: a positive
     branch current flows into the + terminal, so a cell sinking charge
     from BL shows up as a positive current leaving the source's +
     terminal, i.e. a negative branch current. *)
  let netlist, nodes = Sram6t.build ~cell condition in
  let dim =
    Spice.Netlist.num_nodes netlist - 1 + Spice.Netlist.vsource_count netlist
  in
  let x0 = Array.make dim 0.0 in
  x0.(nodes.Sram6t.q - 1) <- condition.Sram6t.vssc;
  x0.(nodes.Sram6t.qb - 1) <- condition.Sram6t.vddc;
  x0.(nodes.Sram6t.cvdd - 1) <- condition.Sram6t.vddc;
  x0.(nodes.Sram6t.cvss - 1) <- condition.Sram6t.vssc;
  x0.(nodes.Sram6t.wl - 1) <- condition.Sram6t.vwl;
  x0.(nodes.Sram6t.bl - 1) <- condition.Sram6t.vbl;
  x0.(nodes.Sram6t.blb - 1) <- condition.Sram6t.vblb;
  let s = Spice.Dc.operating_point ~x0 netlist in
  (* BL is the fourth voltage source added by [Sram6t.build]. *)
  -.s.Spice.Dc.source_currents.(3)
