let hold_snm ?points ~cell vdd =
  Butterfly.hold_snm ?points ~cell (Sram6t.hold ~vdd ())

let read_snm ?points ~cell condition = Butterfly.read_snm ?points ~cell condition

let flips_at_vwl ~cell condition ~vwl =
  let condition = { condition with Sram6t.vwl } in
  (* Start from the lobe holding '1' on Q; if the DC solution lands with Q
     below QB, the access transistor has overpowered the feedback and the
     write succeeded. *)
  let q, qb = Sram6t.solve_state ~q_init:condition.Sram6t.vddc ~cell condition in
  q < qb

let minimum_flipping_vwl ?(tol = 1e-3) ~cell condition =
  let hi = condition.Sram6t.vdd +. 0.4 in
  if not (flips_at_vwl ~cell condition ~vwl:hi) then hi
  else if flips_at_vwl ~cell condition ~vwl:0.0 then 0.0
  else begin
    (* Bisection on the flip predicate: invariant lo never flips, hi
       always does (the access strength is monotone in V_WL). *)
    let rec bisect lo hi =
      if hi -. lo < tol then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if flips_at_vwl ~cell condition ~vwl:mid then bisect lo mid
        else bisect mid hi
      end
    in
    bisect 0.0 hi
  end

let write_margin ?tol ~cell condition =
  condition.Sram6t.vwl -. minimum_flipping_vwl ?tol ~cell condition
