type t = {
  core : Finfet.Variation.cell_sample;
  read_pull_down : Finfet.Device.params;
  read_access : Finfet.Device.params;
}

let of_library lib flavor =
  let nfet = Finfet.Library.nfet lib flavor in
  let pfet = Finfet.Library.pfet lib flavor in
  { core = Finfet.Variation.nominal_cell ~nfet ~pfet;
    read_pull_down = nfet;
    read_access = nfet }

let area_factor = 1.3

let hold_snm ?points t ~vdd = Margins.hold_snm ?points ~cell:t.core vdd

let read_snm ?points t ~vdd = hold_snm ?points t ~vdd

let write_margin ?tol t condition = Margins.write_margin ?tol ~cell:t.core condition

let read_current t ?(vrwl = Finfet.Tech.vdd_nominal) ?(vssc = 0.0) () =
  (* The read pull-down's gate is the QB node at the full cell supply. *)
  Finfet.Calibration.stack_read_current ~access:t.read_access
    ~pull_down:t.read_pull_down ~vwl:vrwl ~vbl:Finfet.Tech.vdd_nominal
    ~vddc:Finfet.Tech.vdd_nominal ~vssc

let leakage_power ?(vdd = Finfet.Tech.vdd_nominal) t =
  (* 6T core in hold plus the read port: RBL precharged, RWL off. *)
  let open Spice in
  let n = Netlist.create () in
  let q = Netlist.fresh_node n "q" in
  let qb = Netlist.fresh_node n "qb" in
  let mid = Netlist.fresh_node n "read_mid" in
  let vdd_node = Netlist.fresh_node n "vdd" in
  let wl = Netlist.fresh_node n "wl" in
  let bl = Netlist.fresh_node n "bl" in
  let blb = Netlist.fresh_node n "blb" in
  let rwl = Netlist.fresh_node n "rwl" in
  let rbl = Netlist.fresh_node n "rbl" in
  Netlist.vdc n ~plus:vdd_node ~minus:Netlist.ground ~volts:vdd;
  Netlist.vdc n ~plus:wl ~minus:Netlist.ground ~volts:0.0;
  Netlist.vdc n ~plus:bl ~minus:Netlist.ground ~volts:vdd;
  Netlist.vdc n ~plus:blb ~minus:Netlist.ground ~volts:vdd;
  Netlist.vdc n ~plus:rwl ~minus:Netlist.ground ~volts:0.0;
  Netlist.vdc n ~plus:rbl ~minus:Netlist.ground ~volts:vdd;
  let c = t.core in
  let open Finfet.Variation in
  Netlist.fet n ~params:c.pull_up_l ~gate:qb ~drain:q ~source:vdd_node ();
  Netlist.fet n ~params:c.pull_down_l ~gate:qb ~drain:q ~source:Netlist.ground ();
  Netlist.fet n ~params:c.access_l ~gate:wl ~drain:bl ~source:q ();
  Netlist.fet n ~params:c.pull_up_r ~gate:q ~drain:qb ~source:vdd_node ();
  Netlist.fet n ~params:c.pull_down_r ~gate:q ~drain:qb ~source:Netlist.ground ();
  Netlist.fet n ~params:c.access_r ~gate:wl ~drain:blb ~source:qb ();
  (* Read port: worst leakage state is QB = 1 (read pull-down on, the OFF
     read access blocks), which is the Q = 0 lobe we solve. *)
  Netlist.fet n ~params:t.read_access ~gate:rwl ~drain:rbl ~source:mid ();
  Netlist.fet n ~params:t.read_pull_down ~gate:qb ~drain:mid ~source:Netlist.ground ();
  let dim = Netlist.num_nodes n - 1 + Netlist.vsource_count n in
  let x0 = Array.make dim 0.0 in
  x0.(qb - 1) <- vdd;
  x0.(vdd_node - 1) <- vdd;
  x0.(bl - 1) <- vdd;
  x0.(blb - 1) <- vdd;
  x0.(rbl - 1) <- vdd;
  let s = Dc.operating_point ~x0 n in
  let sources =
    List.filter_map
      (function
        | Netlist.Vsource { volts; _ } -> Some (Netlist.waveform_at volts 0.0)
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Isource _
        | Netlist.Fet _ -> None)
      (Netlist.elements n)
  in
  List.fold_left ( +. ) 0.0
    (List.mapi (fun k v -> -.v *. s.Dc.source_currents.(k)) sources)
