(** Statistical read timing under local variation.

    The array model prices the bitline with the nominal cell's read
    current, but the sense timing of a real array must cover its slowest
    cell.  This module Monte-Carlo-samples the read stack under
    threshold-voltage mismatch, maps each sample through the Equation (1)
    bitline delay, and reports the guardband a k-sigma-slow cell demands
    — including how the negative-Gnd assist, by raising the overdrive,
    shrinks the *relative* spread. *)

type distribution = {
  samples : float array;   (** sorted ascending *)
  mu : float;
  sigma : float;
}

val summarize : float array -> distribution

val percentile : distribution -> p:float -> float

val read_current_distribution :
  ?sigma_vt:float ->
  ?seed:int ->
  n:int ->
  nfet:Finfet.Device.params ->
  condition:Sram6t.condition ->
  unit ->
  distribution
(** [n] independent (access, pull-down) stack samples at the condition's
    rails. *)

type guardband = {
  nominal_delay : float;     (** BL delay of the nominal cell *)
  mean_delay : float;
  k_sigma_delay : float;     (** delay covering a k-sigma-slow cell *)
  derate : float;            (** k_sigma_delay / nominal_delay *)
}

val bl_delay_guardband :
  ?sigma_vt:float ->
  ?seed:int ->
  ?n:int ->
  ?k:float ->
  cell:Finfet.Variation.cell_sample ->
  column:Column.config ->
  condition:Sram6t.condition ->
  unit ->
  guardband
(** Map the current distribution through C_BL dV / I for the column and
    report the k-sigma (default 3) slow-corner delay.  Defaults: 200
    samples, the technology sigma-Vt. *)
