(** Cell-level reliability margins.

    - HSNM / RSNM delegate to {!Butterfly}.
    - The write margin follows the paper's definition [9]: the difference
      between Vdd and the minimum WL voltage that flips the cell content.
      A cell that cannot be written even with WL at Vdd has a negative
      margin; one that flips with WL at 0 has WM = Vdd. *)

val hold_snm :
  ?points:int -> cell:Finfet.Variation.cell_sample -> float -> float
(** [hold_snm ~cell vdd]: HSNM at the given supply, no assists
    (Figure 2(a) sweep). *)

val read_snm :
  ?points:int ->
  cell:Finfet.Variation.cell_sample ->
  Sram6t.condition ->
  float
(** RSNM under a read condition (assists included via the condition). *)

val flips_at_vwl :
  cell:Finfet.Variation.cell_sample -> Sram6t.condition -> vwl:float -> bool
(** Does a write-0 attempt at the given WL level flip a cell holding 1?
    The bitline levels come from the condition; [vwl] overrides its WL. *)

val minimum_flipping_vwl :
  ?tol:float ->
  cell:Finfet.Variation.cell_sample ->
  Sram6t.condition ->
  float
(** Smallest WL level that flips the cell, found by bisection over
    [0, vdd + 0.4] ([tol] defaults to 1 mV).  Clamps to the bounds when
    the cell flips at 0 or never flips in range. *)

val write_margin :
  ?tol:float ->
  cell:Finfet.Variation.cell_sample ->
  Sram6t.condition ->
  float
(** WM = (driven WL level, i.e. [condition.vwl]) - {!minimum_flipping_vwl}:
    the wordline headroom above the flip point.  Driving WL at nominal Vdd
    recovers the paper's base definition; raising [condition.vwl] models
    the WL-overdrive assist (Figure 5(a)), and lowering [condition.vbl]
    models negative-BL (Figure 5(b)). *)
