type margin_samples = {
  hsnm : float array;
  rsnm : float array;
  wm : float array;
}

let sample_margins ?sigma_vt ?(points = 41) ~seed ~n ~nfet ~pfet
    ~read_condition ~write_condition () =
  assert (n > 0);
  let rng = Numerics.Rng.create ~seed in
  let hsnm = Array.make n 0.0 in
  let rsnm = Array.make n 0.0 in
  let wm = Array.make n 0.0 in
  let vdd = read_condition.Sram6t.vdd in
  for i = 0 to n - 1 do
    let cell = Finfet.Variation.sample_cell ?sigma_vt rng ~nfet ~pfet in
    hsnm.(i) <- Margins.hold_snm ~points ~cell vdd;
    rsnm.(i) <- Margins.read_snm ~points ~cell read_condition;
    wm.(i) <- Margins.write_margin ~cell write_condition
  done;
  { hsnm; rsnm; wm }

type yield_summary = {
  mu_hsnm : float;
  sigma_hsnm : float;
  mu_rsnm : float;
  sigma_rsnm : float;
  mu_wm : float;
  sigma_wm : float;
  worst_mu_minus_k_sigma : float;
}

let summarize ~k { hsnm; rsnm; wm } =
  let mk xs = (Numerics.Stats.mean xs, Numerics.Stats.stddev xs) in
  let mu_hsnm, sigma_hsnm = mk hsnm in
  let mu_rsnm, sigma_rsnm = mk rsnm in
  let mu_wm, sigma_wm = mk wm in
  let worst =
    min
      (Numerics.Stats.mu_minus_k_sigma hsnm ~k)
      (min
         (Numerics.Stats.mu_minus_k_sigma rsnm ~k)
         (Numerics.Stats.mu_minus_k_sigma wm ~k))
  in
  { mu_hsnm; sigma_hsnm; mu_rsnm; sigma_rsnm; mu_wm; sigma_wm;
    worst_mu_minus_k_sigma = worst }

let passes_k_sigma ~k samples = (summarize ~k samples).worst_mu_minus_k_sigma >= 0.0

let yield_fraction ~delta { hsnm; rsnm; wm } =
  let n = Array.length hsnm in
  let pass = ref 0 in
  for i = 0 to n - 1 do
    if hsnm.(i) >= delta && rsnm.(i) >= delta && wm.(i) >= delta then incr pass
  done;
  float_of_int !pass /. float_of_int n
