let survives_pulse ?(points_per_pulse = 400) ~cell ~condition ~pulse () =
  assert (pulse > 0.0);
  let vdd = condition.Sram6t.vdd in
  let edge = 1e-12 in
  let t_open = 1e-12 in
  let t_close = t_open +. edge +. pulse in
  let wl_wave =
    Spice.Netlist.Pwl
      [ (0.0, 0.0);
        (t_open, 0.0);
        (t_open +. edge, condition.Sram6t.vwl);
        (t_close, condition.Sram6t.vwl);
        (t_close +. edge, 0.0) ]
  in
  let netlist, nodes = Sram6t.build ~with_node_caps:true ~wl_wave ~cell condition in
  (* Let the cell resettle for as long as the disturbance lasted. *)
  let t_stop = (2.0 *. t_close) +. 5e-12 in
  let trace =
    Spice.Transient.run
      ~dt:(t_stop /. float_of_int points_per_pulse)
      ~ic:[ (nodes.Sram6t.q, condition.Sram6t.vssc);
            (nodes.Sram6t.qb, condition.Sram6t.vddc) ]
      ~t_stop netlist
  in
  let final = trace.Spice.Transient.voltages.(Array.length trace.Spice.Transient.times - 1) in
  final.(nodes.Sram6t.q) < 0.5 *. vdd && final.(nodes.Sram6t.qb) > 0.5 *. vdd

let critical_pulse ?(lo = 1e-12) ?(hi = 200e-12) ~cell ~condition () =
  if survives_pulse ~cell ~condition ~pulse:hi () then None
  else if not (survives_pulse ~cell ~condition ~pulse:lo ()) then Some lo
  else begin
    (* Longer pulses only give the disturbance more time: the predicate is
       monotone, so bisect. *)
    let rec bisect lo hi iter =
      if iter = 0 || hi /. lo < 1.15 then Some lo
      else begin
        let mid = sqrt (lo *. hi) in
        if survives_pulse ~cell ~condition ~pulse:mid () then bisect mid hi (iter - 1)
        else bisect lo mid (iter - 1)
      end
    in
    bisect lo hi 20
  end
