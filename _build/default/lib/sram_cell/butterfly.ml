type vtc = { inputs : float array; outputs : float array }

let trace_vtc ?(points = 81) ~cell ~side ~access_on condition =
  assert (points >= 2);
  let lo = min condition.Sram6t.vssc 0.0 in
  let hi = condition.Sram6t.vddc in
  let inputs =
    Array.init points (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)))
  in
  let build vin =
    let netlist, _out = Sram6t.build_half_vtc ~cell ~side ~access_on condition ~vin in
    netlist
  in
  (* The output node is always the second allocated node of the half-cell
     netlist; re-fetch it once for voltage extraction. *)
  let _, out_node = Sram6t.build_half_vtc ~cell ~side ~access_on condition ~vin:lo in
  let solutions = Spice.Dc.sweep ~build ~points:inputs in
  let outputs = Array.map (fun s -> Spice.Dc.node_voltage s out_node) solutions in
  { inputs; outputs }

type butterfly = { curve_r : vtc; curve_l : vtc }

let trace ?points ~cell ~access_on condition =
  { curve_r = trace_vtc ?points ~cell ~side:`Right ~access_on condition;
    curve_l = trace_vtc ?points ~cell ~side:`Left ~access_on condition }

type snm = { lobe_high : float; lobe_low : float }

(* Largest square in the eye bounded above by [upper] (y = u(x)) and on the
   lower-left by [lower] (x = l(y)).  Both touching corners of the maximal
   square lie on a common 45-degree line y = x + b; the square side equals
   the horizontal distance between the two intersection points.  We scan b
   and keep the best. *)
let lobe ~upper ~lower =
  let u = Numerics.Interp.pchip ~xs:upper.inputs ~ys:upper.outputs in
  let l = Numerics.Interp.pchip ~xs:lower.inputs ~ys:lower.outputs in
  let lo = upper.inputs.(0) in
  let hi = upper.inputs.(Array.length upper.inputs - 1) in
  let span = hi -. lo in
  let side_at b =
    (* Intersection with the upper curve: u(x) = x + b. *)
    let g x = u x -. x -. b in
    (* Intersection with the lower curve: point (l(y), y) on the line means
       l(y) = y - b. *)
    let h y = l y -. y +. b in
    match
      ( Numerics.Roots.find_bracket g ~lo ~hi ~n:64,
        Numerics.Roots.find_bracket h ~lo ~hi ~n:64 )
    with
    | Some (glo, ghi), Some (hlo, hhi) ->
      let x1 = Numerics.Roots.brent ~tol:1e-9 g ~lo:glo ~hi:ghi in
      let y2 = Numerics.Roots.brent ~tol:1e-9 h ~lo:hlo ~hi:hhi in
      let x2 = y2 -. b in
      x1 -. x2
    | None, (Some _ | None) | Some _, None -> neg_infinity
  in
  let best = ref 0.0 in
  let steps = 160 in
  for k = 1 to steps - 1 do
    let b = span *. float_of_int k /. float_of_int steps in
    let s = side_at b in
    if s > !best then best := s
  done;
  !best

let snm_of_butterfly { curve_r; curve_l } =
  (* Upper-left eye: curve R bounds it from above, curve L from the
     lower-left.  The lower-right eye is the same picture with the axes
     swapped (a reflection across y = x), which simply exchanges the two
     curves' roles. *)
  let lobe_high = lobe ~upper:curve_r ~lower:curve_l in
  let lobe_low = lobe ~upper:curve_l ~lower:curve_r in
  { lobe_high; lobe_low }

let worst_snm { lobe_high; lobe_low } = min lobe_high lobe_low

let hold_snm ?points ~cell condition =
  worst_snm (snm_of_butterfly (trace ?points ~cell ~access_on:false condition))

let read_snm ?points ~cell condition =
  worst_snm (snm_of_butterfly (trace ?points ~cell ~access_on:true condition))
