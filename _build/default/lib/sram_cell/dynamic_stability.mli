(** Dynamic read stability: the pulse-width dimension the paper's static
    analysis conservatively ignores.

    Static RSNM asks whether a cell survives an infinitely long read;
    real word lines close after a pulse.  A cell whose static margin is
    negative can still be read safely if the WL pulse is shorter than the
    time its storage node needs to cross the trip point — which is why
    static-margin-constrained assist levels are conservative.  This module
    measures that flip time by transient simulation and finds the critical
    pulse width. *)

val survives_pulse :
  ?points_per_pulse:int ->
  cell:Finfet.Variation.cell_sample ->
  condition:Sram6t.condition ->
  pulse:float ->
  unit ->
  bool
(** Transient a read access whose WL pulse lasts [pulse] seconds (1 ps
    edges), from the Q = 0 hold state, and report whether the cell still
    holds its value once the word line has closed and the cell has had an
    equal time to resettle. *)

val critical_pulse :
  ?lo:float ->
  ?hi:float ->
  cell:Finfet.Variation.cell_sample ->
  condition:Sram6t.condition ->
  unit ->
  float option
(** Largest safe pulse width, found by bisection over [lo, hi] (defaults
    1 ps .. 200 ps).  [None] when even the longest pulse is safe (the
    statically stable case); [Some lo'] close to [lo] means the cell is
    dynamically unusable at this condition. *)
