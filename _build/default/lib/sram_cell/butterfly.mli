(** Butterfly curves and static-noise-margin extraction (Seevinck's
    largest-embedded-square method, as cited by the paper [12]).

    The butterfly plane has V_Q on the horizontal axis and V_QB on the
    vertical axis.  Curve R is the right inverter's transfer function
    (input Q, output QB); curve L is the left inverter's (input QB,
    output Q, plotted mirrored).  The SNM is the side of the largest
    square that fits inside the smaller of the two eyes. *)

type vtc = {
  inputs : float array;   (** sweep of the inverter input voltage *)
  outputs : float array;  (** solved inverter output voltage *)
}

val trace_vtc :
  ?points:int ->
  cell:Finfet.Variation.cell_sample ->
  side:[ `Left | `Right ] ->
  access_on:bool ->
  Sram6t.condition ->
  vtc
(** Solve the half-cell of {!Sram6t.build_half_vtc} over a sweep of the
    input voltage from the cell-ground to the cell-supply rail
    (default 81 points, warm-started). *)

type butterfly = {
  curve_r : vtc;  (** input V_Q, output V_QB *)
  curve_l : vtc;  (** input V_QB, output V_Q *)
}

val trace :
  ?points:int ->
  cell:Finfet.Variation.cell_sample ->
  access_on:bool ->
  Sram6t.condition ->
  butterfly

type snm = {
  lobe_high : float;  (** largest square in the upper-left eye, V *)
  lobe_low : float;   (** largest square in the lower-right eye, V *)
}

val snm_of_butterfly : butterfly -> snm
(** Extract both lobes.  A collapsed eye (monostable cell) yields 0. *)

val worst_snm : snm -> float
(** min of the two lobes — the cell's static noise margin. *)

val hold_snm :
  ?points:int -> cell:Finfet.Variation.cell_sample -> Sram6t.condition -> float
(** HSNM: butterfly with access transistors off. *)

val read_snm :
  ?points:int -> cell:Finfet.Variation.cell_sample -> Sram6t.condition -> float
(** RSNM: butterfly with wordline on and bitlines clamped (worst-case
    static read). *)
