(** Standby / data-retention analysis.

    The paper's Figure 2 argument — Vdd scaling saves less leakage than
    switching to HVT — naturally extends to the standby question a memory
    designer asks next: how low can the retention rail drop, and what does
    a drowsy-standby mode save?  This module answers both with the same
    butterfly and leakage machinery. *)

val retention_voltage :
  ?margin_fraction:float ->
  ?points:int ->
  ?tol:float ->
  cell:Finfet.Variation.cell_sample ->
  unit ->
  float
(** Minimum supply at which the hold SNM still exceeds
    [margin_fraction] x Vdd (default: the technology rule, 0.35).
    Bisection over the monotone HSNM/Vdd-fraction curve; [tol] is the
    voltage resolution (default 2 mV).  Returns the technology nominal if
    even that fails (degenerate cells under heavy variation). *)

type standby_summary = {
  v_retention : float;      (** solved retention supply *)
  v_standby : float;        (** retention + guard band *)
  p_active : float;         (** leakage at nominal Vdd, W/cell *)
  p_standby : float;        (** leakage at the standby rail, W/cell *)
  savings : float;          (** 1 - p_standby / p_active *)
}

val standby :
  ?guard_band:float ->
  ?points:int ->
  cell:Finfet.Variation.cell_sample ->
  unit ->
  standby_summary
(** Drowsy-mode summary with a [guard_band] (default 50 mV) above the
    solved retention voltage. *)
