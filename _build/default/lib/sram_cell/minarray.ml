type result = {
  sensed_delay : float;
  analytic_delay : float;
  relative_error : float;
  accessed_retains : bool;
  row_mates_retain : bool;
  unselected_retain : bool;
  unknowns : int;
}

let read_experiment ?(nr = 8) ?(nc = 4) ?t_stop ~cell
    (condition : Sram6t.condition) =
  assert (nr >= 2 && nc >= 1);
  let open Spice in
  let vdd = condition.Sram6t.vdd in
  let vddc = condition.Sram6t.vddc in
  let vssc = condition.Sram6t.vssc in
  let n = Netlist.create () in
  (* Rails: the accessed row gets the assist levels, the others nominal —
     the per-row CVDD/CVSS multiplexers of the paper's Figure 6. *)
  let cvdd_sel = Netlist.fresh_node n "cvdd_sel" in
  let cvss_sel = Netlist.fresh_node n "cvss_sel" in
  let cvdd_nom = Netlist.fresh_node n "cvdd_nom" in
  Netlist.vdc n ~plus:cvdd_sel ~minus:Netlist.ground ~volts:vddc;
  Netlist.vdc n ~plus:cvss_sel ~minus:Netlist.ground ~volts:vssc;
  Netlist.vdc n ~plus:cvdd_nom ~minus:Netlist.ground ~volts:vdd;
  (* Word lines: row 0 steps to the read level, the rest stay low.  A
     grounded-WL row needs no source — tie the gates to ground. *)
  let wl_sel = Netlist.fresh_node n "wl0" in
  Netlist.vwave n ~plus:wl_sel ~minus:Netlist.ground
    ~wave:(Netlist.Step
             { t_delay = 1e-12; t_rise = 1e-12; v0 = 0.0;
               v1 = condition.Sram6t.vwl });
  (* Floating, precharged bitline pairs with the wire + junction cap the
     analytic model assigns (the access-transistor drains are lumped here;
     the netlist FETs carry currents, not parasitics). *)
  let c_bl =
    (float_of_int nr
     *. (Finfet.Tech.c_height +. cell.Finfet.Variation.access_l.Finfet.Device.c_drain))
    +. (2.0 *. cell.Finfet.Variation.pull_up_l.Finfet.Device.c_drain)
  in
  let bl = Array.init nc (fun c -> Netlist.fresh_node n (Printf.sprintf "bl%d" c)) in
  let blb = Array.init nc (fun c -> Netlist.fresh_node n (Printf.sprintf "blb%d" c)) in
  Array.iter
    (fun node -> Netlist.capacitor n ~plus:node ~minus:Netlist.ground ~farads:c_bl)
    bl;
  Array.iter
    (fun node -> Netlist.capacitor n ~plus:node ~minus:Netlist.ground ~farads:c_bl)
    blb;
  (* Cells. *)
  let q = Array.make_matrix nr nc 0 in
  let qb = Array.make_matrix nr nc 0 in
  let c_node = Sram6t.storage_node_cap cell in
  for r = 0 to nr - 1 do
    let row_vdd = if r = 0 then cvdd_sel else cvdd_nom in
    let row_vss = if r = 0 then cvss_sel else Netlist.ground in
    let row_wl = if r = 0 then wl_sel else Netlist.ground in
    for c = 0 to nc - 1 do
      let nq = Netlist.fresh_node n (Printf.sprintf "q_%d_%d" r c) in
      let nqb = Netlist.fresh_node n (Printf.sprintf "qb_%d_%d" r c) in
      q.(r).(c) <- nq;
      qb.(r).(c) <- nqb;
      let open Finfet.Variation in
      Netlist.fet n ~params:cell.pull_up_l ~gate:nqb ~drain:nq ~source:row_vdd ();
      Netlist.fet n ~params:cell.pull_down_l ~gate:nqb ~drain:nq ~source:row_vss ();
      Netlist.fet n ~params:cell.access_l ~gate:row_wl ~drain:bl.(c) ~source:nq ();
      Netlist.fet n ~params:cell.pull_up_r ~gate:nq ~drain:nqb ~source:row_vdd ();
      Netlist.fet n ~params:cell.pull_down_r ~gate:nq ~drain:nqb ~source:row_vss ();
      Netlist.fet n ~params:cell.access_r ~gate:row_wl ~drain:blb.(c) ~source:nqb ();
      Netlist.capacitor n ~plus:nq ~minus:Netlist.ground ~farads:c_node;
      Netlist.capacitor n ~plus:nqb ~minus:Netlist.ground ~farads:c_node
    done
  done;
  (* Analytic reference for the accessed column. *)
  let i_read =
    Finfet.Calibration.stack_read_current ~access:cell.Finfet.Variation.access_l
      ~pull_down:cell.Finfet.Variation.pull_down_l ~vwl:condition.Sram6t.vwl
      ~vbl:vdd ~vddc ~vssc
  in
  let analytic_delay =
    if i_read <= 0.0 then infinity
    else c_bl *. Finfet.Tech.delta_v_sense /. i_read
  in
  let t_stop =
    match t_stop with Some t -> t | None -> 6.0 *. analytic_delay
  in
  (* Initial conditions: every cell stores 0 (on its row's rails), all
     bitlines precharged. *)
  let ic = ref [] in
  for r = 0 to nr - 1 do
    let hi = if r = 0 then vddc else vdd in
    let lo = if r = 0 then vssc else 0.0 in
    for c = 0 to nc - 1 do
      ic := (q.(r).(c), lo) :: (qb.(r).(c), hi) :: !ic
    done
  done;
  Array.iter (fun node -> ic := (node, vdd) :: !ic) bl;
  Array.iter (fun node -> ic := (node, vdd) :: !ic) blb;
  let trace = Transient.run ~dt:(t_stop /. 300.0) ~ic:!ic ~t_stop n in
  let sensed_delay =
    match
      Transient.crossing_time trace ~node:bl.(0)
        ~threshold:(vdd -. Finfet.Tech.delta_v_sense) ~direction:`Falling
    with
    | Some t -> t
    | None -> infinity
  in
  let final = trace.Transient.voltages.(Array.length trace.Transient.times - 1) in
  let retains r c =
    let hi = if r = 0 then vddc else vdd in
    (* A retained 0: the storage node stays below the trip region and its
       complement stays high. *)
    final.(q.(r).(c)) < 0.45 *. hi && final.(qb.(r).(c)) > 0.75 *. hi
  in
  let row_mates = ref true in
  for c = 1 to nc - 1 do
    if not (retains 0 c) then row_mates := false
  done;
  let unselected = ref true in
  for r = 1 to nr - 1 do
    for c = 0 to nc - 1 do
      if not (retains r c) then unselected := false
    done
  done;
  { sensed_delay;
    analytic_delay;
    relative_error =
      (if Float.is_finite sensed_delay then
         (sensed_delay -. analytic_delay) /. sensed_delay
       else infinity);
    accessed_retains = retains 0 0;
    row_mates_retain = !row_mates;
    unselected_retain = !unselected;
    unknowns = Netlist.num_nodes n - 1 + Netlist.vsource_count n }

type write_result = {
  flipped : bool;
  write_delay : float;
  mates_survive : bool;
  others_survive : bool;
  w_unknowns : int;
}

let write_experiment ?(nr = 8) ?(nc = 4) ?(t_stop = 40e-12) ~cell ~vwl () =
  assert (nr >= 2 && nc >= 2);
  let open Spice in
  let vdd = Finfet.Tech.vdd_nominal in
  let n = Netlist.create () in
  let vdd_node = Netlist.fresh_node n "vdd" in
  Netlist.vdc n ~plus:vdd_node ~minus:Netlist.ground ~volts:vdd;
  let wl_sel = Netlist.fresh_node n "wl0" in
  Netlist.vwave n ~plus:wl_sel ~minus:Netlist.ground
    ~wave:(Netlist.Step { t_delay = 1e-12; t_rise = 1e-12; v0 = 0.0; v1 = vwl });
  (* Column 0: bitlines driven to the write value (writing a 1: BL high,
     BLB low).  Other columns: floating precharged pairs, i.e. the
     half-select condition. *)
  let bl0 = Netlist.fresh_node n "bl0" in
  let blb0 = Netlist.fresh_node n "blb0" in
  Netlist.vdc n ~plus:bl0 ~minus:Netlist.ground ~volts:vdd;
  Netlist.vdc n ~plus:blb0 ~minus:Netlist.ground ~volts:0.0;
  let c_bl =
    (float_of_int nr
     *. (Finfet.Tech.c_height +. cell.Finfet.Variation.access_l.Finfet.Device.c_drain))
    +. (2.0 *. cell.Finfet.Variation.pull_up_l.Finfet.Device.c_drain)
  in
  let bl = Array.make nc bl0 in
  let blb = Array.make nc blb0 in
  for c = 1 to nc - 1 do
    bl.(c) <- Netlist.fresh_node n (Printf.sprintf "bl%d" c);
    blb.(c) <- Netlist.fresh_node n (Printf.sprintf "blb%d" c);
    Netlist.capacitor n ~plus:bl.(c) ~minus:Netlist.ground ~farads:c_bl;
    Netlist.capacitor n ~plus:blb.(c) ~minus:Netlist.ground ~farads:c_bl
  done;
  let q = Array.make_matrix nr nc 0 in
  let qb = Array.make_matrix nr nc 0 in
  let c_node = Sram6t.storage_node_cap cell in
  for r = 0 to nr - 1 do
    let row_wl = if r = 0 then wl_sel else Netlist.ground in
    for c = 0 to nc - 1 do
      let nq = Netlist.fresh_node n (Printf.sprintf "q_%d_%d" r c) in
      let nqb = Netlist.fresh_node n (Printf.sprintf "qb_%d_%d" r c) in
      q.(r).(c) <- nq;
      qb.(r).(c) <- nqb;
      let open Finfet.Variation in
      Netlist.fet n ~params:cell.pull_up_l ~gate:nqb ~drain:nq ~source:vdd_node ();
      Netlist.fet n ~params:cell.pull_down_l ~gate:nqb ~drain:nq
        ~source:Netlist.ground ();
      Netlist.fet n ~params:cell.access_l ~gate:row_wl ~drain:bl.(c) ~source:nq ();
      Netlist.fet n ~params:cell.pull_up_r ~gate:nq ~drain:nqb ~source:vdd_node ();
      Netlist.fet n ~params:cell.pull_down_r ~gate:nq ~drain:nqb
        ~source:Netlist.ground ();
      Netlist.fet n ~params:cell.access_r ~gate:row_wl ~drain:blb.(c)
        ~source:nqb ();
      Netlist.capacitor n ~plus:nq ~minus:Netlist.ground ~farads:c_node;
      Netlist.capacitor n ~plus:nqb ~minus:Netlist.ground ~farads:c_node
    done
  done;
  let ic = ref [] in
  for r = 0 to nr - 1 do
    for c = 0 to nc - 1 do
      ic := (q.(r).(c), 0.0) :: (qb.(r).(c), vdd) :: !ic
    done
  done;
  for c = 1 to nc - 1 do
    ic := (bl.(c), vdd) :: (blb.(c), vdd) :: !ic
  done;
  let trace = Transient.run ~dt:(t_stop /. 400.0) ~ic:!ic ~t_stop n in
  let final = trace.Transient.voltages.(Array.length trace.Transient.times - 1) in
  let flipped = final.(q.(0).(0)) > 0.75 *. vdd && final.(qb.(0).(0)) < 0.25 *. vdd in
  (* Write delay: WL at 50% Vdd to the target's Q/QB crossing. *)
  let wl_cross =
    match
      Transient.crossing_time trace ~node:wl_sel ~threshold:(0.5 *. vdd)
        ~direction:`Rising
    with
    | Some t -> t
    | None -> 1e-12
  in
  let qt = Transient.node_trace trace q.(0).(0) in
  let qbt = Transient.node_trace trace qb.(0).(0) in
  let write_delay =
    let rec find k =
      if k >= Array.length qt then infinity
      else if qt.(k) -. qbt.(k) >= 0.0 then trace.Transient.times.(k) -. wl_cross
      else find (k + 1)
    in
    find 1
  in
  let retains r c = final.(q.(r).(c)) < 0.45 *. vdd && final.(qb.(r).(c)) > 0.75 *. vdd in
  let mates = ref true in
  for c = 1 to nc - 1 do
    if not (retains 0 c) then mates := false
  done;
  let others = ref true in
  for r = 1 to nr - 1 do
    for c = 0 to nc - 1 do
      if not (retains r c) then others := false
    done
  done;
  { flipped;
    write_delay;
    mates_survive = !mates;
    others_survive = !others;
    w_unknowns = Netlist.num_nodes n - 1 + Netlist.vsource_count n }
