(** Dynamic (transient) cell characteristics: the cell-level write delay
    and the read current drawn from the bitline.

    The paper defines the cell write delay as the time from WL reaching
    50% of Vdd until Q and QB cross; read current is the current the
    accessed cell sinks from the precharged bitline, the quantity the
    negative-Gnd assist boosts. *)

type write_delay_result = {
  delay : float;            (** seconds, WL-at-50%%-Vdd to Q/QB crossing *)
  flipped : bool;           (** false when the write failed in the window *)
  wl_cross_time : float;    (** absolute time WL passed 50%% of Vdd *)
}

val write_delay :
  ?t_stop:float ->
  ?wl_rise:float ->
  cell:Finfet.Variation.cell_sample ->
  Sram6t.condition ->
  write_delay_result
(** Transient write-0 into a cell holding 1.  WL ramps from 0 to
    [condition.vwl] over [wl_rise] (default 1 ps); simulation window
    default 30 ps. *)

val read_current :
  cell:Finfet.Variation.cell_sample -> Sram6t.condition -> float
(** DC current pulled out of the BL source by the accessed half-cell in
    the read condition (Q side holding 0).  Positive for a conducting
    stack. *)
