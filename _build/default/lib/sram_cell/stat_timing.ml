type distribution = {
  samples : float array;
  mu : float;
  sigma : float;
}

let summarize values =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  { samples = sorted;
    mu = Numerics.Stats.mean sorted;
    sigma = Numerics.Stats.stddev sorted }

let percentile d ~p = Numerics.Stats.percentile d.samples ~p

let read_current_distribution ?(sigma_vt = Finfet.Variation.sigma_vt_default)
    ?(seed = 31) ~n ~nfet ~condition () =
  assert (n > 0);
  let rng = Numerics.Rng.create ~seed in
  let samples =
    Array.init n (fun _ ->
        let access = Finfet.Variation.sample_device ~sigma_vt rng nfet in
        let pull_down = Finfet.Variation.sample_device ~sigma_vt rng nfet in
        Finfet.Calibration.stack_read_current ~access ~pull_down
          ~vwl:condition.Sram6t.vwl ~vbl:condition.Sram6t.vbl
          ~vddc:condition.Sram6t.vddc ~vssc:condition.Sram6t.vssc)
  in
  summarize samples

type guardband = {
  nominal_delay : float;
  mean_delay : float;
  k_sigma_delay : float;
  derate : float;
}

let bl_delay_guardband ?sigma_vt ?seed ?(n = 200) ?(k = 3.0) ~cell ~column
    ~condition () =
  let c_bl = Column.bl_capacitance ~cell column in
  let to_delay i =
    if i <= 0.0 then infinity else c_bl *. Finfet.Tech.delta_v_sense /. i
  in
  let currents =
    read_current_distribution ?sigma_vt ?seed ~n
      ~nfet:cell.Finfet.Variation.access_l ~condition ()
  in
  let delays = summarize (Array.map to_delay currents.samples) in
  let nominal_delay = Column.analytic_delay ~cell column condition in
  (* The slow corner is the current distribution's low tail; use the
     delay distribution directly so the nonlinearity of 1/I is kept. *)
  let k_sigma_delay = delays.mu +. (k *. delays.sigma) in
  { nominal_delay;
    mean_delay = delays.mu;
    k_sigma_delay;
    derate = k_sigma_delay /. nominal_delay }
