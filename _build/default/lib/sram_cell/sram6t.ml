type condition = {
  vdd : float;
  vddc : float;
  vssc : float;
  vwl : float;
  vbl : float;
  vblb : float;
}

let hold ?(vdd = Finfet.Tech.vdd_nominal) () =
  { vdd; vddc = vdd; vssc = 0.0; vwl = 0.0; vbl = vdd; vblb = vdd }

let read ?(vdd = Finfet.Tech.vdd_nominal) ?vddc ?(vssc = 0.0) ?vwl () =
  let vddc = Option.value vddc ~default:vdd in
  let vwl = Option.value vwl ~default:vdd in
  { vdd; vddc; vssc; vwl; vbl = vdd; vblb = vdd }

let write0 ?(vdd = Finfet.Tech.vdd_nominal) ?vwl ?(vbl = 0.0) () =
  let vwl = Option.value vwl ~default:vdd in
  { vdd; vddc = vdd; vssc = 0.0; vwl; vbl; vblb = vdd }

type nodes = {
  q : Spice.Netlist.node;
  qb : Spice.Netlist.node;
  cvdd : Spice.Netlist.node;
  cvss : Spice.Netlist.node;
  wl : Spice.Netlist.node;
  bl : Spice.Netlist.node;
  blb : Spice.Netlist.node;
}

let storage_node_cap (cell : Finfet.Variation.cell_sample) =
  let open Finfet.Device in
  cell.Finfet.Variation.pull_up_l.c_drain
  +. cell.Finfet.Variation.pull_down_l.c_drain
  +. cell.Finfet.Variation.access_l.c_drain
  +. cell.Finfet.Variation.pull_up_r.c_gate
  +. cell.Finfet.Variation.pull_down_r.c_gate

let build ?(with_node_caps = false) ?wl_wave ~cell condition =
  let open Spice in
  let n = Netlist.create () in
  let q = Netlist.fresh_node n "q" in
  let qb = Netlist.fresh_node n "qb" in
  let cvdd = Netlist.fresh_node n "cvdd" in
  let cvss = Netlist.fresh_node n "cvss" in
  let wl = Netlist.fresh_node n "wl" in
  let bl = Netlist.fresh_node n "bl" in
  let blb = Netlist.fresh_node n "blb" in
  Netlist.vdc n ~plus:cvdd ~minus:Netlist.ground ~volts:condition.vddc;
  Netlist.vdc n ~plus:cvss ~minus:Netlist.ground ~volts:condition.vssc;
  (match wl_wave with
   | Some wave -> Netlist.vwave n ~plus:wl ~minus:Netlist.ground ~wave
   | None -> Netlist.vdc n ~plus:wl ~minus:Netlist.ground ~volts:condition.vwl);
  Netlist.vdc n ~plus:bl ~minus:Netlist.ground ~volts:condition.vbl;
  Netlist.vdc n ~plus:blb ~minus:Netlist.ground ~volts:condition.vblb;
  let c = cell in
  let open Finfet.Variation in
  Netlist.fet n ~params:c.pull_up_l ~gate:qb ~drain:q ~source:cvdd ();
  Netlist.fet n ~params:c.pull_down_l ~gate:qb ~drain:q ~source:cvss ();
  Netlist.fet n ~params:c.access_l ~gate:wl ~drain:bl ~source:q ();
  Netlist.fet n ~params:c.pull_up_r ~gate:q ~drain:qb ~source:cvdd ();
  Netlist.fet n ~params:c.pull_down_r ~gate:q ~drain:qb ~source:cvss ();
  Netlist.fet n ~params:c.access_r ~gate:wl ~drain:blb ~source:qb ();
  if with_node_caps then begin
    let cq = storage_node_cap cell in
    Netlist.capacitor n ~plus:q ~minus:Netlist.ground ~farads:cq;
    Netlist.capacitor n ~plus:qb ~minus:Netlist.ground ~farads:cq
  end;
  (n, { q; qb; cvdd; cvss; wl; bl; blb })

let solve_state ?(q_init = 0.0) ~cell condition =
  let netlist, nodes = build ~cell condition in
  (* Warm-start the bistable solve on the intended lobe: Q at [q_init],
     QB at the complementary rail, sources at their own values. *)
  let dim =
    Spice.Netlist.num_nodes netlist - 1 + Spice.Netlist.vsource_count netlist
  in
  let x0 = Array.make dim 0.0 in
  let qb_init =
    if q_init > 0.5 *. condition.vddc then condition.vssc else condition.vddc
  in
  x0.(nodes.q - 1) <- q_init;
  x0.(nodes.qb - 1) <- qb_init;
  x0.(nodes.cvdd - 1) <- condition.vddc;
  x0.(nodes.cvss - 1) <- condition.vssc;
  x0.(nodes.wl - 1) <- condition.vwl;
  x0.(nodes.bl - 1) <- condition.vbl;
  x0.(nodes.blb - 1) <- condition.vblb;
  let s = Spice.Dc.operating_point ~x0 netlist in
  (Spice.Dc.node_voltage s nodes.q, Spice.Dc.node_voltage s nodes.qb)

let build_half_vtc ~cell ~side ~access_on condition ~vin =
  let open Spice in
  let n = Netlist.create () in
  let input = Netlist.fresh_node n "vin" in
  let out = Netlist.fresh_node n "vout" in
  let cvdd = Netlist.fresh_node n "cvdd" in
  let cvss = Netlist.fresh_node n "cvss" in
  let wl = Netlist.fresh_node n "wl" in
  let bitline = Netlist.fresh_node n "bitline" in
  Netlist.vdc n ~plus:input ~minus:Netlist.ground ~volts:vin;
  Netlist.vdc n ~plus:cvdd ~minus:Netlist.ground ~volts:condition.vddc;
  Netlist.vdc n ~plus:cvss ~minus:Netlist.ground ~volts:condition.vssc;
  Netlist.vdc n ~plus:wl ~minus:Netlist.ground
    ~volts:(if access_on then condition.vwl else 0.0);
  let open Finfet.Variation in
  let pull_up, pull_down, access, vbitline =
    match side with
    | `Left -> (cell.pull_up_l, cell.pull_down_l, cell.access_l, condition.vbl)
    | `Right -> (cell.pull_up_r, cell.pull_down_r, cell.access_r, condition.vblb)
  in
  Netlist.vdc n ~plus:bitline ~minus:Netlist.ground ~volts:vbitline;
  Netlist.fet n ~params:pull_up ~gate:input ~drain:out ~source:cvdd ();
  Netlist.fet n ~params:pull_down ~gate:input ~drain:out ~source:cvss ();
  Netlist.fet n ~params:access ~gate:wl ~drain:bitline ~source:out ();
  (n, out)
