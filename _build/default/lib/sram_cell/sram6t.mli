(** The standard 6T SRAM cell (Figure 1(a) of the paper): netlist
    construction under arbitrary rail and assist voltages, and the DC
    helpers shared by the margin / leakage / dynamics analyses.

    Naming: the "left" half stores Q, the "right" half stores QB.  BL is
    the bitline on the Q side. *)

type condition = {
  vdd : float;        (** nominal supply: BL precharge level and the WL
                          read level before assists *)
  vddc : float;       (** cell supply rail (= vdd unless Vdd-boost) *)
  vssc : float;       (** cell ground rail (= 0 unless negative-Gnd) *)
  vwl : float;        (** wordline high level for the operation modelled *)
  vbl : float;        (** BL level (Q side): precharge for read, write-0
                          level for write (negative under negative-BL) *)
  vblb : float;       (** BLB level (QB side) *)
}

val hold : ?vdd:float -> unit -> condition
(** WL off, bitlines precharged, rails nominal: the retention state.
    [vdd] defaults to the technology nominal. *)

val read : ?vdd:float -> ?vddc:float -> ?vssc:float -> ?vwl:float -> unit -> condition
(** Worst-case static read: WL on, both bitlines clamped at [vdd].
    Assist levels default to no-assist values. *)

val write0 : ?vdd:float -> ?vwl:float -> ?vbl:float -> unit -> condition
(** Writing 0 into Q (which holds 1): BL driven to [vbl] (default 0),
    BLB to [vdd], WL at [vwl] (overdriven if > vdd). *)

type nodes = {
  q : Spice.Netlist.node;
  qb : Spice.Netlist.node;
  cvdd : Spice.Netlist.node;
  cvss : Spice.Netlist.node;
  wl : Spice.Netlist.node;
  bl : Spice.Netlist.node;
  blb : Spice.Netlist.node;
}

val build :
  ?with_node_caps:bool ->
  ?wl_wave:Spice.Netlist.waveform ->
  cell:Finfet.Variation.cell_sample ->
  condition ->
  Spice.Netlist.t * nodes
(** Full cross-coupled cell with its five rails as voltage sources.
    [with_node_caps] (default false) attaches the lumped storage-node
    capacitances needed by transient analysis.  [wl_wave] overrides the WL
    source with a waveform (for write-delay transients). *)

val storage_node_cap : Finfet.Variation.cell_sample -> float
(** Lumped capacitance of one storage node: local drain junctions plus the
    opposite inverter's gate load. *)

val solve_state :
  ?q_init:float ->
  cell:Finfet.Variation.cell_sample ->
  condition ->
  (float * float)
(** DC solve of the cell returning (V_Q, V_QB).  [q_init] biases the
    Newton start so the intended lobe of the bistable solution is found
    (default: Q low).  The complementary node starts at the opposite
    rail. *)

val build_half_vtc :
  cell:Finfet.Variation.cell_sample ->
  side:[ `Left | `Right ] ->
  access_on:bool ->
  condition ->
  vin:float ->
  Spice.Netlist.t * Spice.Netlist.node
(** One inverter of the cell with its input gate driven by an independent
    source at [vin] — the half-cell used to trace butterfly curves.
    [access_on] selects the read configuration (WL at [condition.vwl],
    bitline clamped) versus hold (WL grounded).  Returns the netlist and
    the output node. *)
