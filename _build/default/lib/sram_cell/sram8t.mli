(** The 8T SRAM cell — the "more robust cell at larger area" alternative
    the paper's introduction sets aside ([2, 3] in its references).

    An 8T cell is a 6T core (written through WWL / WBL exactly like the
    6T) plus a decoupled two-transistor read port: a read pull-down whose
    gate is the QB storage node and a read access gated by a separate read
    word line onto a single-ended read bitline.  Because the read never
    disturbs the storage nodes, the read SNM equals the hold SNM — read
    stability is solved structurally instead of with HVT devices and
    assist rails, at the cost of ~30%% more cell area and two more leakage
    paths.  {!Sram_edp.Eight_t} builds the array-level comparison. *)

type t = {
  core : Finfet.Variation.cell_sample;   (** the 6T write/storage core *)
  read_pull_down : Finfet.Device.params; (** gate tied to QB *)
  read_access : Finfet.Device.params;    (** gate tied to RWL *)
}

val of_library : Finfet.Library.t -> Finfet.Library.flavor -> t
(** All eight transistors in the given flavor, single-fin. *)

val area_factor : float
(** Cell footprint relative to the 6T layout: 1.3 (two extra transistors
    on the standard 8T layout). *)

val hold_snm : ?points:int -> t -> vdd:float -> float
(** Same retention metric as the 6T core. *)

val read_snm : ?points:int -> t -> vdd:float -> float
(** Equal to {!hold_snm}: the decoupled read port does not disturb the
    cell.  Provided as its own function so call sites document which
    margin they constrain. *)

val write_margin : ?tol:float -> t -> Sram6t.condition -> float
(** Delegates to the 6T core's write analysis. *)

val read_current : t -> ?vrwl:float -> ?vssc:float -> unit -> float
(** Current the read stack sinks from the precharged read bitline:
    the read pull-down's gate sits at the full cell supply (QB stores 1
    when Q = 0), [vrwl] (default Vdd) drives the read access, and [vssc]
    (default 0) is the read-buffer source rail — the negative-Gnd assist
    applies to the read port without any stability cost. *)

val leakage_power : ?vdd:float -> t -> float
(** Hold-state leakage of the full 8-transistor cell (DC solve; the read
    port adds roughly one OFF-transistor path to the 6T figure). *)
