(** Column-level transient validation of the array model's Equation (1).

    The paper prices the bitline discharge as D = C_BL dV / I_read — a
    lumped-capacitance, constant-current approximation.  This module
    builds the real circuit (an accessed 6T cell discharging a bitline
    modelled as a distributed RC ladder, with the off cells' drain
    junctions loading every segment) and measures the sensing delay by
    transient simulation, so the approximation error can be quantified
    (and is, in the test suite and the [validate] bench). *)

type config = {
  nr : int;               (** cells on the bitline *)
  n_pre : int;            (** precharger fins loading the BL *)
  n_wr : int;             (** write-gate fins loading the BL *)
  segments : int;         (** RC-ladder sections (>= 1; 1 = lumped C) *)
  with_wire_resistance : bool;
      (** include the bitline's metal resistance (the paper neglects it) *)
}

val default_config : config
(** 64 cells, 1 precharger fin, 1 write fin, 8 segments, wire R on. *)

val bl_capacitance : cell:Finfet.Variation.cell_sample -> config -> float
(** Total bitline capacitance of the column: per-cell wire + drain
    junctions plus the peripheral loading — the same C_BL the analytic
    model uses (Table 1 with the configured fins, no column mux). *)

val analytic_delay :
  cell:Finfet.Variation.cell_sample -> config -> Sram6t.condition -> float
(** Equation (1): C_BL x Delta V_S / I_read(condition). *)

type result = {
  analytic : float;       (** Equation (1) prediction, s *)
  simulated : float;      (** transient sensing delay, s *)
  relative_error : float; (** (simulated - analytic) / simulated *)
}

val validate :
  ?t_stop:float ->
  cell:Finfet.Variation.cell_sample ->
  config ->
  Sram6t.condition ->
  result
(** Build the column, precharge, assert WL at the condition's level, and
    time the far-end sense node falling by Delta V_S.  The accessed cell
    sits at the far end of the ladder (worst case); the sense node is the
    near end. *)

val analytic_write_delay :
  cell:Finfet.Variation.cell_sample -> config -> float
(** Table 2's BL-write row: C_BL Vdd / (0.5 N_wr I_ON,TG) — the time the
    write buffer needs to pull the precharged bitline to ground through
    its transmission gate. *)

val validate_write :
  ?t_stop:float ->
  cell:Finfet.Variation.cell_sample ->
  config ->
  result
(** Transient counterpart: an N_wr-fin transmission gate (driven on)
    discharging the same RC ladder from Vdd, timed to the far end
    reaching Vdd/2 (the full-swing write condition).  Compares against
    {!analytic_write_delay} — the factor 0.50 in Table 2 is the paper's
    average-current fit, so agreement within tens of percent is the
    expected outcome, not exactness. *)
