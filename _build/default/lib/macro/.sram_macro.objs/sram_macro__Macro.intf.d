lib/macro/macro.mli: Array_model Finfet Opt Workload
