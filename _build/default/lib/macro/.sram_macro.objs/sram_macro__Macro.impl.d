lib/macro/macro.ml: Array Array_model Int64 Numerics Opt Printf Workload
