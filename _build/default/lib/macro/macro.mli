(** A functional, cycle-costed SRAM macro.

    This is the component a system simulator would actually instantiate:
    a word-addressable memory whose every operation is priced with the
    co-optimized array's delay and energy (Table 3 / Equations (2)-(5))
    and whose idle time accrues leakage.  Contents power up to random
    values (real SRAM does), reads and writes are functionally exact, and
    the accumulated statistics reconcile with the analytical model — a
    property the test suite checks.

    The macro is single-ported and blocking: each operation advances time
    by the operation's delay; [idle] advances it by one array cycle. *)

type t

val create :
  ?power_up_seed:int ->
  env:Array_model.Array_eval.env ->
  geometry:Array_model.Geometry.t ->
  assist:Array_model.Components.assist ->
  unit ->
  t
(** A macro over an explicit design point. *)

val create_optimized :
  ?power_up_seed:int ->
  ?space:Opt.Space.t ->
  capacity_bits:int ->
  flavor:Finfet.Library.flavor ->
  method_:Opt.Space.method_ ->
  unit ->
  t
(** Run the co-optimization and wrap the winning design. *)

val capacity_bits : t -> int

val word_bits : t -> int
(** Bits per addressable word: min(W, n_c). *)

val words : t -> int

type response = {
  data : int64;     (** word read, or the word just written *)
  delay : float;    (** seconds consumed by this operation *)
  energy : float;   (** joules consumed, leakage included *)
}

val read : t -> addr:int -> response
(** @raise Invalid_argument when the address is out of range. *)

val write : t -> addr:int -> data:int64 -> response
(** Data beyond [word_bits] is masked off. *)

val idle : t -> unit
(** One array-cycle of inactivity (leakage only). *)

type stats = {
  reads : int;
  writes : int;
  idle_cycles : int;
  elapsed : float;           (** total simulated time, s *)
  switching_energy : float;  (** J *)
  leakage_energy : float;    (** J *)
  total_energy : float;
  worst_op_delay : float;
}

val stats : t -> stats

val reset_stats : t -> unit
(** Clears the counters; memory contents persist. *)

val run_trace : t -> Workload.Trace.access array -> stats
(** Play an operation trace: reads and writes target pseudo-random
    addresses derived from the macro's RNG; returns the statistics of
    this run only (counters are reset first). *)
