type stats = {
  reads : int;
  writes : int;
  idle_cycles : int;
  elapsed : float;
  switching_energy : float;
  leakage_energy : float;
  total_energy : float;
  worst_op_delay : float;
}

type t = {
  env : Array_model.Array_eval.env;
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  word_bits : int;
  words : int;
  contents : int64 array;       (* one word per address *)
  p_leak_total : float;         (* W, whole array *)
  rng : Numerics.Rng.t;         (* address stream for run_trace *)
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_idles : int;
  mutable s_elapsed : float;
  mutable s_switching : float;
  mutable s_leakage : float;
  mutable s_worst : float;
}

let mask_of_bits bits =
  if bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

let create ?(power_up_seed = 2016) ~env ~geometry ~assist () =
  let metrics = Array_model.Array_eval.evaluate env geometry assist in
  let word_bits = min geometry.Array_model.Geometry.w geometry.Array_model.Geometry.nc in
  let words = Array_model.Geometry.capacity_bits geometry / word_bits in
  let rng = Numerics.Rng.create ~seed:power_up_seed in
  let mask = mask_of_bits word_bits in
  (* SRAM powers up to an arbitrary pattern; make it reproducibly so. *)
  let contents =
    Array.init words (fun _ ->
        let hi = Int64.of_int (Numerics.Rng.int_below rng (1 lsl 30)) in
        let lo = Int64.of_int (Numerics.Rng.int_below rng (1 lsl 30)) in
        let mid = Int64.of_int (Numerics.Rng.int_below rng 16) in
        Int64.logand mask
          (Int64.logor
             (Int64.shift_left hi 34)
             (Int64.logor (Int64.shift_left mid 30) lo)))
  in
  let p_leak_total =
    float_of_int (Array_model.Geometry.capacity_bits geometry)
    *. env.Array_model.Array_eval.periphery.Array_model.Periphery.p_leak_cell
  in
  { env; geometry; assist; metrics; word_bits; words; contents; p_leak_total;
    rng;
    s_reads = 0; s_writes = 0; s_idles = 0; s_elapsed = 0.0;
    s_switching = 0.0; s_leakage = 0.0; s_worst = 0.0 }

let create_optimized ?power_up_seed ?space ~capacity_bits ~flavor ~method_ () =
  let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
  let result = Opt.Exhaustive.search ?space ~env ~capacity_bits ~method_ () in
  let best = result.Opt.Exhaustive.best in
  create ?power_up_seed ~env ~geometry:best.Opt.Exhaustive.geometry
    ~assist:best.Opt.Exhaustive.assist ()

let capacity_bits t = Array_model.Geometry.capacity_bits t.geometry
let word_bits t = t.word_bits
let words t = t.words

type response = {
  data : int64;
  delay : float;
  energy : float;
}

let check_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg
      (Printf.sprintf "Macro: address %d out of range (0..%d)" addr (t.words - 1))

let account t ~delay ~switching =
  let leak = t.p_leak_total *. delay in
  t.s_elapsed <- t.s_elapsed +. delay;
  t.s_switching <- t.s_switching +. switching;
  t.s_leakage <- t.s_leakage +. leak;
  t.s_worst <- max t.s_worst delay;
  switching +. leak

let read t ~addr =
  check_addr t addr;
  let m = t.metrics in
  let delay = m.Array_model.Array_eval.d_read in
  let energy = account t ~delay ~switching:m.Array_model.Array_eval.e_read in
  t.s_reads <- t.s_reads + 1;
  { data = t.contents.(addr); delay; energy }

let write t ~addr ~data =
  check_addr t addr;
  let m = t.metrics in
  let masked = Int64.logand data (mask_of_bits t.word_bits) in
  t.contents.(addr) <- masked;
  let delay = m.Array_model.Array_eval.d_write in
  let energy = account t ~delay ~switching:m.Array_model.Array_eval.e_write in
  t.s_writes <- t.s_writes + 1;
  { data = masked; delay; energy }

let idle t =
  let delay = t.metrics.Array_model.Array_eval.d_array in
  ignore (account t ~delay ~switching:0.0);
  t.s_idles <- t.s_idles + 1

let stats t =
  { reads = t.s_reads;
    writes = t.s_writes;
    idle_cycles = t.s_idles;
    elapsed = t.s_elapsed;
    switching_energy = t.s_switching;
    leakage_energy = t.s_leakage;
    total_energy = t.s_switching +. t.s_leakage;
    worst_op_delay = t.s_worst }

let reset_stats t =
  t.s_reads <- 0;
  t.s_writes <- 0;
  t.s_idles <- 0;
  t.s_elapsed <- 0.0;
  t.s_switching <- 0.0;
  t.s_leakage <- 0.0;
  t.s_worst <- 0.0

let run_trace t trace =
  reset_stats t;
  Array.iter
    (fun op ->
      match op with
      | Workload.Trace.Idle -> idle t
      | Workload.Trace.Read ->
        ignore (read t ~addr:(Numerics.Rng.int_below t.rng t.words))
      | Workload.Trace.Write ->
        let addr = Numerics.Rng.int_below t.rng t.words in
        let data = Int64.of_int (Numerics.Rng.int_below t.rng (1 lsl 30)) in
        ignore (write t ~addr ~data))
    trace;
  stats t
