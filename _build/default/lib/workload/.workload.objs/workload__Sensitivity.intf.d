lib/workload/sensitivity.mli: Opt
