lib/workload/trace.mli:
