lib/workload/trace.ml: Array List Numerics
