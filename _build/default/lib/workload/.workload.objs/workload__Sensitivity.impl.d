lib/workload/sensitivity.ml: Array_model Finfet List Opt Trace
