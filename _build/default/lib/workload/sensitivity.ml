type study_row = {
  name : string;
  alpha : float;
  beta : float;
  vssc : float;
  d_array : float;
  e_total : float;
  edp : float;
  hvt_advantage : float;
}

let study ?(space = Opt.Space.reduced) ?(length = 20_000) ?(seed = 11)
    ~capacity_bits () =
  List.map
    (fun (name, profile) ->
      let summary = Trace.characterize (Trace.generate ~seed profile ~length) in
      let optimum flavor =
        let env =
          Array_model.Array_eval.make_env ~alpha:summary.Trace.alpha
            ~beta:summary.Trace.beta ~cell_flavor:flavor ()
        in
        (Opt.Exhaustive.search ~space ~env ~capacity_bits
           ~method_:Opt.Space.M2 ())
          .Opt.Exhaustive.best
      in
      let hvt = optimum Finfet.Library.Hvt in
      let lvt = optimum Finfet.Library.Lvt in
      let mh = hvt.Opt.Exhaustive.metrics in
      let ml = lvt.Opt.Exhaustive.metrics in
      { name;
        alpha = summary.Trace.alpha;
        beta = summary.Trace.beta;
        vssc = hvt.Opt.Exhaustive.assist.Array_model.Components.vssc;
        d_array = mh.Array_model.Array_eval.d_array;
        e_total = mh.Array_model.Array_eval.e_total;
        edp = mh.Array_model.Array_eval.edp;
        hvt_advantage =
          1.0 -. (mh.Array_model.Array_eval.edp /. ml.Array_model.Array_eval.edp) })
    Trace.named_profiles
