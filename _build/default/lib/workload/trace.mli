(** Synthetic access traces and their reduction to the array model's
    workload parameters.

    The paper fixes the activity factor alpha = 0.5 and the read fraction
    beta = 0.5; real memories see anything from idle-dominated sensor
    buffers to read-saturated instruction caches.  This module generates
    cycle-accurate operation streams from workload profiles and measures
    the (alpha, beta) pair the analytical model consumes, so the
    co-optimization can be run per workload ({!Sensitivity}). *)

type access = Read | Write | Idle

type profile =
  | Uniform of { activity : float; read_fraction : float }
      (** i.i.d. per cycle: P(access) = activity, then read with
          probability read_fraction. *)
  | Bursty of { burst : int; idle : int; read_fraction : float }
      (** alternating busy bursts and idle gaps of fixed lengths *)
  | Phased of (profile * int) list
      (** concatenated sub-profiles with cycle counts *)

val generate : ?seed:int -> profile -> length:int -> access array
(** [length] cycles of the profile (Phased profiles use their own segment
    lengths and repeat until [length] cycles are emitted). *)

type summary = {
  cycles : int;
  reads : int;
  writes : int;
  idles : int;
  alpha : float;   (** (reads + writes) / cycles *)
  beta : float;    (** reads / (reads + writes); 0.5 for an all-idle trace *)
}

val characterize : access array -> summary

val named_profiles : (string * profile) list
(** A small benchmark suite: "paper" (alpha = beta = 0.5), "read-heavy"
    (instruction-cache-like), "write-heavy" (log buffer), "low-activity"
    (sensor hub), "bursty" (DMA staging). *)
