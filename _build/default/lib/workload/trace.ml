type access = Read | Write | Idle

type profile =
  | Uniform of { activity : float; read_fraction : float }
  | Bursty of { burst : int; idle : int; read_fraction : float }
  | Phased of (profile * int) list

let rec emit rng profile ~cycle =
  match profile with
  | Uniform { activity; read_fraction } ->
    if Numerics.Rng.uniform rng >= activity then Idle
    else if Numerics.Rng.uniform rng < read_fraction then Read
    else Write
  | Bursty { burst; idle; read_fraction } ->
    assert (burst > 0 && idle >= 0);
    let period = burst + idle in
    if cycle mod period >= burst then Idle
    else if Numerics.Rng.uniform rng < read_fraction then Read
    else Write
  | Phased segments ->
    assert (segments <> []);
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 segments in
    assert (total > 0);
    let position = cycle mod total in
    let rec pick offset = function
      | [] -> assert false
      | (p, n) :: rest ->
        if position < offset + n then emit rng p ~cycle:(position - offset)
        else pick (offset + n) rest
    in
    pick 0 segments

let generate ?(seed = 1) profile ~length =
  assert (length > 0);
  let rng = Numerics.Rng.create ~seed in
  Array.init length (fun cycle -> emit rng profile ~cycle)

type summary = {
  cycles : int;
  reads : int;
  writes : int;
  idles : int;
  alpha : float;
  beta : float;
}

let characterize trace =
  let reads = ref 0 and writes = ref 0 and idles = ref 0 in
  Array.iter
    (function
      | Read -> incr reads
      | Write -> incr writes
      | Idle -> incr idles)
    trace;
  let cycles = Array.length trace in
  let accesses = !reads + !writes in
  { cycles;
    reads = !reads;
    writes = !writes;
    idles = !idles;
    alpha = float_of_int accesses /. float_of_int (max cycles 1);
    beta =
      (if accesses = 0 then 0.5
       else float_of_int !reads /. float_of_int accesses) }

let named_profiles =
  [ ("paper", Uniform { activity = 0.5; read_fraction = 0.5 });
    ("read-heavy", Uniform { activity = 0.8; read_fraction = 0.95 });
    ("write-heavy", Uniform { activity = 0.6; read_fraction = 0.15 });
    ("low-activity", Uniform { activity = 0.05; read_fraction = 0.7 });
    ("bursty", Bursty { burst = 32; idle = 224; read_fraction = 0.6 }) ]
