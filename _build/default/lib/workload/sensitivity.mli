(** Workload sensitivity of the co-optimization.

    Feeding a trace's measured (alpha, beta) into the array model and
    re-running the search shows how the optimum moves with the workload:
    idle-dominated traces amplify the leakage term (and with it the HVT
    advantage), write-heavy traces reweight the wordline-overdrive
    energy, and read-heavy traces reward the negative-Gnd assist. *)

type study_row = {
  name : string;
  alpha : float;
  beta : float;
  vssc : float;          (** chosen negative-Gnd level *)
  d_array : float;
  e_total : float;
  edp : float;
  hvt_advantage : float; (** 1 - EDP_hvt / EDP_lvt at this workload *)
}

val study :
  ?space:Opt.Space.t ->
  ?length:int ->
  ?seed:int ->
  capacity_bits:int ->
  unit ->
  study_row list
(** One row per {!Trace.named_profiles} entry: generate the trace, measure
    (alpha, beta), co-optimize both flavors under M2 and report the HVT
    design plus its advantage over LVT. *)
