type trace = {
  times : float array;
  voltages : float array array;
  source_currents : float array array;
}

type method_ = Backward_euler | Trapezoidal

let capacitors netlist =
  List.filter_map
    (function
      | Netlist.Capacitor { plus; minus; farads } -> Some (plus, minus, farads)
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Fet _ -> None)
    (Netlist.elements netlist)

(* One implicit step from [state] (node voltages) over [h], with [i_caps]
   holding each capacitor's branch current entering the step (used by the
   trapezoidal rule; ignored by backward Euler).  Returns the DC solution
   and the updated capacitor currents. *)
let step ~method_ ~netlist ~caps ~warm ~state ~i_caps ~t ~h =
  let companions =
    Array.mapi
      (fun idx (plus, minus, farads) ->
        let v_prev = state.(plus) -. state.(minus) in
        match method_ with
        | Backward_euler -> { Dc.g_eq = farads /. h; v_hist = v_prev }
        | Trapezoidal ->
          (* i = (2C/h)(v - v_prev) - i_prev = g (v - v_hist) with
             v_hist = v_prev + i_prev h / (2C). *)
          let g_eq = 2.0 *. farads /. h in
          { Dc.g_eq; v_hist = v_prev +. (i_caps.(idx) /. g_eq) })
      caps
  in
  let s = Dc.operating_point_companioned ?x0:warm ~at_time:t ~companions netlist in
  let i_caps' =
    Array.mapi
      (fun idx (plus, minus, _) ->
        let v_new = s.Dc.voltages.(plus) -. s.Dc.voltages.(minus) in
        let { Dc.g_eq; v_hist } = companions.(idx) in
        g_eq *. (v_new -. v_hist))
      caps
  in
  (s, i_caps')

let initial_state ?(ic = []) netlist =
  let init = Dc.operating_point ~at_time:0.0 netlist in
  let v = Array.copy init.Dc.voltages in
  List.iter (fun (node, volts) -> v.(node) <- volts) ic;
  (v, init.Dc.source_currents)

let run ?dt ?ic ?(method_ = Backward_euler) ~t_stop netlist =
  assert (t_stop > 0.0);
  let dt = match dt with Some d -> d | None -> t_stop /. 400.0 in
  assert (dt > 0.0);
  let caps = Array.of_list (capacitors netlist) in
  let v0, i_src0 = initial_state ?ic netlist in
  let steps = int_of_float (ceil (t_stop /. dt)) in
  let times = Array.make (steps + 1) 0.0 in
  let voltages = Array.make (steps + 1) [||] in
  let source_currents = Array.make (steps + 1) [||] in
  voltages.(0) <- Array.copy v0;
  source_currents.(0) <- Array.copy i_src0;
  let warm = ref None in
  let state = ref v0 in
  let i_caps = ref (Array.make (Array.length caps) 0.0) in
  for k = 1 to steps do
    let t = min (float_of_int k *. dt) t_stop in
    let h = t -. times.(k - 1) in
    if h > 0.0 then begin
      (* The trapezoidal rule needs each capacitor's entering current; the
         first step has no history, so it runs backward Euler (whose
         result supplies consistent currents for step two). *)
      let method_now = if k = 1 then Backward_euler else method_ in
      let s, i' =
        step ~method_:method_now ~netlist ~caps ~warm:!warm ~state:!state
          ~i_caps:!i_caps ~t ~h
      in
      warm := Some (Dc.solution_vector s);
      state := s.Dc.voltages;
      i_caps := i';
      times.(k) <- t;
      voltages.(k) <- Array.copy s.Dc.voltages;
      source_currents.(k) <- Array.copy s.Dc.source_currents
    end
    else begin
      times.(k) <- times.(k - 1);
      voltages.(k) <- voltages.(k - 1);
      source_currents.(k) <- source_currents.(k - 1)
    end
  done;
  { times; voltages; source_currents }

let max_abs_diff a b =
  let worst = ref 0.0 in
  Array.iteri
    (fun i x -> worst := max !worst (abs_float (x -. b.(i))))
    a;
  !worst

let run_adaptive ?dt_min ?dt_max ?(dv_max = 0.030) ?ic
    ?(method_ = Backward_euler) ~t_stop netlist =
  assert (t_stop > 0.0);
  let dt_min = match dt_min with Some d -> d | None -> t_stop /. 1e5 in
  let dt_max = match dt_max with Some d -> d | None -> t_stop /. 20.0 in
  assert (dt_min > 0.0 && dt_max >= dt_min);
  let caps = Array.of_list (capacitors netlist) in
  let v0, i_src0 = initial_state ?ic netlist in
  let rev_times = ref [ 0.0 ] in
  let rev_voltages = ref [ Array.copy v0 ] in
  let rev_currents = ref [ Array.copy i_src0 ] in
  let state = ref v0 in
  let i_caps = ref (Array.make (Array.length caps) 0.0) in
  let warm = ref None in
  let t = ref 0.0 in
  let h = ref (min dt_max (t_stop /. 100.0)) in
  let first = ref true in
  while !t < t_stop -. 1e-18 *. t_stop do
    let h_now = min !h (t_stop -. !t) in
    let t_next = !t +. h_now in
    let method_now = if !first then Backward_euler else method_ in
    let s, i' =
      step ~method_:method_now ~netlist ~caps ~warm:!warm ~state:!state
        ~i_caps:!i_caps ~t:t_next ~h:h_now
    in
    let dv = max_abs_diff s.Dc.voltages !state in
    if dv > dv_max && h_now > dt_min then
      (* Reject: too sharp for this step; the halved step also re-solves
         the same interval, so nothing is recorded. *)
      h := max dt_min (0.5 *. h_now)
    else begin
      first := false;
      t := t_next;
      state := s.Dc.voltages;
      i_caps := i';
      warm := Some (Dc.solution_vector s);
      rev_times := !t :: !rev_times;
      rev_voltages := Array.copy s.Dc.voltages :: !rev_voltages;
      rev_currents := Array.copy s.Dc.source_currents :: !rev_currents;
      if dv < 0.25 *. dv_max then h := min dt_max (1.5 *. h_now)
    end
  done;
  { times = Array.of_list (List.rev !rev_times);
    voltages = Array.of_list (List.rev !rev_voltages);
    source_currents = Array.of_list (List.rev !rev_currents) }

let node_trace trace node = Array.map (fun v -> v.(node)) trace.voltages

let crossing_time trace ~node ~threshold ~direction =
  let n = Array.length trace.times in
  let crosses a b =
    match direction with
    | `Rising -> a < threshold && b >= threshold
    | `Falling -> a > threshold && b <= threshold
  in
  let rec scan k =
    if k >= n then None
    else begin
      let a = trace.voltages.(k - 1).(node) and b = trace.voltages.(k).(node) in
      if crosses a b then begin
        let frac = if b = a then 0.0 else (threshold -. a) /. (b -. a) in
        Some (trace.times.(k - 1) +. (frac *. (trace.times.(k) -. trace.times.(k - 1))))
      end
      else scan (k + 1)
    end
  in
  if n < 2 then None else scan 1

let value_at trace ~node ~time =
  let n = Array.length trace.times in
  assert (n > 0);
  if time <= trace.times.(0) then trace.voltages.(0).(node)
  else if time >= trace.times.(n - 1) then trace.voltages.(n - 1).(node)
  else begin
    let rec find k = if trace.times.(k) >= time then k else find (k + 1) in
    let k = find 1 in
    let t0 = trace.times.(k - 1) and t1 = trace.times.(k) in
    let v0 = trace.voltages.(k - 1).(node) and v1 = trace.voltages.(k).(node) in
    if t1 = t0 then v1 else v0 +. ((v1 -. v0) *. ((time -. t0) /. (t1 -. t0)))
  end

let source_energy trace netlist ~source_index =
  let waveforms =
    List.filter_map
      (function
        | Netlist.Vsource { volts; _ } -> Some volts
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Isource _
        | Netlist.Fet _ -> None)
      (Netlist.elements netlist)
  in
  let wave = List.nth waveforms source_index in
  let n = Array.length trace.times in
  let power k =
    let v = Netlist.waveform_at wave trace.times.(k) in
    -.v *. trace.source_currents.(k).(source_index)
  in
  let acc = ref 0.0 in
  for k = 1 to n - 1 do
    let dt = trace.times.(k) -. trace.times.(k - 1) in
    acc := !acc +. (0.5 *. dt *. (power k +. power (k - 1)))
  done;
  !acc

let delivered_energy trace netlist =
  let n_sources = Netlist.vsource_count netlist in
  let acc = ref 0.0 in
  for i = 0 to n_sources - 1 do
    acc := !acc +. source_energy trace netlist ~source_index:i
  done;
  !acc
