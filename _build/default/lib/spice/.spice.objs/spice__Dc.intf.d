lib/spice/dc.mli: Netlist Numerics
