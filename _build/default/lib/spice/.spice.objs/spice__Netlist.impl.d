lib/spice/netlist.ml: Array Finfet List Printf
