lib/spice/transient.ml: Array Dc List Netlist
