lib/spice/ac.ml: Array Dc Float List Netlist Numerics
