lib/spice/netlist.mli: Finfet
