lib/spice/deck.mli: Finfet Netlist
