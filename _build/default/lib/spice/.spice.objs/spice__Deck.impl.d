lib/spice/deck.ml: Buffer Char Finfet List Netlist Printf String
