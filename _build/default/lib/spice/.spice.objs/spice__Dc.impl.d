lib/spice/dc.ml: Array Finfet List Netlist Numerics
