lib/spice/transient.mli: Netlist
