type node = int

let ground = 0

type waveform =
  | Const of float
  | Step of { t_delay : float; t_rise : float; v0 : float; v1 : float }
  | Pwl of (float * float) list

let waveform_at w t =
  match w with
  | Const v -> v
  | Step { t_delay; t_rise; v0; v1 } ->
    if t <= t_delay then v0
    else if t_rise <= 0.0 || t >= t_delay +. t_rise then v1
    else v0 +. ((v1 -. v0) *. ((t -. t_delay) /. t_rise))
  | Pwl corners ->
    let rec interp = function
      | [] -> 0.0
      | [ (_, v) ] -> v
      | (t0, v0) :: ((t1, v1) :: _ as rest) ->
        if t <= t0 then v0
        else if t <= t1 then v0 +. ((v1 -. v0) *. ((t -. t0) /. (t1 -. t0)))
        else interp rest
    in
    interp corners

let waveform_final = function
  | Const v -> v
  | Step { v1; _ } -> v1
  | Pwl corners ->
    (match List.rev corners with [] -> 0.0 | (_, v) :: _ -> v)

type element =
  | Resistor of { plus : node; minus : node; ohms : float }
  | Capacitor of { plus : node; minus : node; farads : float }
  | Vsource of { plus : node; minus : node; volts : waveform }
  | Isource of { from_node : node; to_node : node; amps : float }
  | Fet of {
      params : Finfet.Device.params;
      nfin : int;
      gate : node;
      drain : node;
      source : node;
    }

type t = {
  mutable names : string list; (* reverse order, excludes ground *)
  mutable count : int;         (* nodes allocated including ground *)
  mutable elems : element list; (* reverse insertion order *)
  mutable n_vsrc : int;
}

let create () = { names = []; count = 1; elems = []; n_vsrc = 0 }

let fresh_node t name =
  let id = t.count in
  t.count <- t.count + 1;
  t.names <- name :: t.names;
  id

let node_name t n =
  if n = 0 then "gnd"
  else begin
    let names = Array.of_list (List.rev t.names) in
    if n - 1 < Array.length names then names.(n - 1) else Printf.sprintf "n%d" n
  end

let add t e =
  (match e with Vsource _ -> t.n_vsrc <- t.n_vsrc + 1 | Resistor _ | Capacitor _ | Isource _ | Fet _ -> ());
  t.elems <- e :: t.elems

let num_nodes t = t.count
let elements t = List.rev t.elems
let vsource_count t = t.n_vsrc

let validate t =
  let ok_node n = n >= 0 && n < t.count in
  let check e =
    match e with
    | Resistor { plus; minus; ohms } ->
      if not (ok_node plus && ok_node minus) then Error "resistor: bad node"
      else if ohms <= 0.0 then Error "resistor: non-positive resistance"
      else Ok ()
    | Capacitor { plus; minus; farads } ->
      if not (ok_node plus && ok_node minus) then Error "capacitor: bad node"
      else if farads <= 0.0 then Error "capacitor: non-positive capacitance"
      else Ok ()
    | Vsource { plus; minus; _ } ->
      if ok_node plus && ok_node minus then Ok () else Error "vsource: bad node"
    | Isource { from_node; to_node; _ } ->
      if ok_node from_node && ok_node to_node then Ok () else Error "isource: bad node"
    | Fet { gate; drain; source; nfin; _ } ->
      if not (ok_node gate && ok_node drain && ok_node source) then Error "fet: bad node"
      else if nfin <= 0 then Error "fet: non-positive fin count"
      else Ok ()
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> check e)
    (Ok ()) (elements t)

let resistor t ~plus ~minus ~ohms = add t (Resistor { plus; minus; ohms })
let capacitor t ~plus ~minus ~farads = add t (Capacitor { plus; minus; farads })
let vdc t ~plus ~minus ~volts = add t (Vsource { plus; minus; volts = Const volts })
let vwave t ~plus ~minus ~wave = add t (Vsource { plus; minus; volts = wave })
let idc t ~from_node ~to_node ~amps = add t (Isource { from_node; to_node; amps })

let fet t ~params ?(nfin = 1) ~gate ~drain ~source () =
  add t (Fet { params; nfin; gate; drain; source })
