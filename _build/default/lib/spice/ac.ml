type point = {
  frequency : float;
  magnitude : float;
  phase : float;
}

let dimension netlist =
  Netlist.num_nodes netlist - 1 + Netlist.vsource_count netlist

(* Capacitor incidence scaled by C (the imaginary stamps per rad/s). *)
let capacitance_entries netlist =
  let entries = ref [] in
  let stamp i j v = if i > 0 && j > 0 then entries := (i - 1, j - 1, v) :: !entries in
  List.iter
    (function
      | Netlist.Capacitor { plus; minus; farads } ->
        stamp plus plus farads;
        stamp minus minus farads;
        stamp plus minus (-.farads);
        stamp minus plus (-.farads)
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _
      | Netlist.Fet _ -> ())
    (Netlist.elements netlist);
  !entries

let stimulus_vector netlist ~source_index =
  let n_src = Netlist.vsource_count netlist in
  if source_index < 0 || source_index >= n_src then
    invalid_arg "Ac: source index out of range";
  let dim = dimension netlist in
  let b = Array.make dim 0.0 in
  (* The constraint row of source k sits at (num_nodes - 1) + k. *)
  b.(Netlist.num_nodes netlist - 1 + source_index) <- 1.0;
  b

let check_output netlist output =
  if output <= 0 || output >= Netlist.num_nodes netlist then
    invalid_arg "Ac: output must be a non-ground node"

(* Solve (G + j w C) x = b as [[G, -wC]; [wC, G]] [xr; xi] = [b; 0]. *)
let solve_complex netlist ~source_index ~omega =
  let dim = dimension netlist in
  let op = Dc.operating_point netlist in
  let g = Dc.small_signal_conductance netlist op in
  let caps = capacitance_entries netlist in
  let builder = Numerics.Sparse.Builder.create ~n:(2 * dim) in
  Numerics.Sparse.iter g (fun i j v ->
      Numerics.Sparse.Builder.add builder i j v;
      Numerics.Sparse.Builder.add builder (dim + i) (dim + j) v);
  List.iter
    (fun (i, j, c) ->
      let wc = omega *. c in
      if wc <> 0.0 then begin
        Numerics.Sparse.Builder.add builder i (dim + j) (-.wc);
        Numerics.Sparse.Builder.add builder (dim + i) j wc
      end)
    caps;
  let b = stimulus_vector netlist ~source_index in
  let rhs = Array.append b (Array.make dim 0.0) in
  let x = Numerics.Sparse_lu.solve (Numerics.Sparse.of_builder builder) rhs in
  (Array.sub x 0 dim, Array.sub x dim dim)

let at_frequency netlist ~source_index ~output ~frequency =
  check_output netlist output;
  let omega = 2.0 *. Float.pi *. frequency in
  let re, im = solve_complex netlist ~source_index ~omega in
  let vr = re.(output - 1) and vi = im.(output - 1) in
  { frequency;
    magnitude = sqrt ((vr *. vr) +. (vi *. vi));
    phase = atan2 vi vr }

let sweep ?(points_per_decade = 10) netlist ~source_index ~output ~f_start
    ~f_stop =
  assert (f_start > 0.0 && f_stop > f_start && points_per_decade >= 1);
  let decades = log10 (f_stop /. f_start) in
  let total = max 1 (int_of_float (ceil (decades *. float_of_int points_per_decade))) in
  List.init (total + 1) (fun i ->
      let frac = float_of_int i /. float_of_int total in
      let frequency = f_start *. (10.0 ** (frac *. decades)) in
      at_frequency netlist ~source_index ~output ~frequency)

let dc_gain netlist ~source_index ~output =
  check_output netlist output;
  let re, _ = solve_complex netlist ~source_index ~omega:0.0 in
  re.(output - 1)

let corner_frequency ?points_per_decade netlist ~source_index ~output ~f_start
    ~f_stop =
  let reference = abs_float (dc_gain netlist ~source_index ~output) in
  if reference <= 0.0 then None
  else begin
    let threshold = reference /. sqrt 2.0 in
    let points = sweep ?points_per_decade netlist ~source_index ~output ~f_start ~f_stop in
    let rec scan = function
      | a :: (b :: _ as rest) ->
        if a.magnitude >= threshold && b.magnitude < threshold then begin
          (* Log-linear interpolation between the straddling points. *)
          let frac =
            (a.magnitude -. threshold) /. (a.magnitude -. b.magnitude)
          in
          Some (a.frequency *. ((b.frequency /. a.frequency) ** frac))
        end
        else scan rest
      | [ _ ] | [] -> None
    in
    scan points
  end
