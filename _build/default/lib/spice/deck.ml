type bindings = (string * Netlist.node) list

(* --- values --- *)

let suffixes =
  [ ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6);
    ("m", 1e-3); ("k", 1e3); ("g", 1e9) ]

let parse_value raw =
  let s = String.lowercase_ascii (String.trim raw) in
  if s = "" then Error "empty value"
  else begin
    let try_suffix (suffix, scale) =
      let ls = String.length s and lx = String.length suffix in
      if ls > lx && String.sub s (ls - lx) lx = suffix then
        match float_of_string_opt (String.sub s 0 (ls - lx)) with
        | Some v -> Some (v *. scale)
        | None -> None
      else None
    in
    (* "meg" must be tried before "m"/"g". *)
    match List.find_map try_suffix suffixes with
    | Some v -> Ok v
    | None ->
      (match float_of_string_opt s with
       | Some v -> Ok v
       | None -> Error (Printf.sprintf "bad value %S" raw))
  end

(* --- parsing --- *)

let is_ground name =
  match String.lowercase_ascii name with "0" | "gnd" -> true | _ -> false

let tokenize line =
  (* Split on blanks but keep PWL(...) together by first normalizing the
     parenthesized group: remove spaces around '(' ')' then split the
     argument list separately where needed. *)
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun t -> t <> "")

let model_of_name lib name =
  match String.lowercase_ascii name with
  | "nfet_lvt" -> Some (Finfet.Library.nfet lib Finfet.Library.Lvt)
  | "nfet_hvt" -> Some (Finfet.Library.nfet lib Finfet.Library.Hvt)
  | "pfet_lvt" -> Some (Finfet.Library.pfet lib Finfet.Library.Lvt)
  | "pfet_hvt" -> Some (Finfet.Library.pfet lib Finfet.Library.Hvt)
  | _ -> None

type state = {
  netlist : Netlist.t;
  mutable names : bindings;
}

let resolve st name =
  if is_ground name then Netlist.ground
  else
    match List.assoc_opt name st.names with
    | Some node -> node
    | None ->
      let node = Netlist.fresh_node st.netlist name in
      st.names <- (name, node) :: st.names;
      node

let parse_pwl body =
  (* body looks like "PWL(0 0 1n 0.45)" (already joined). *)
  let inner =
    match String.index_opt body '(' with
    | Some i when body.[String.length body - 1] = ')' ->
      String.sub body (i + 1) (String.length body - i - 2)
    | Some _ | None -> ""
  in
  let tokens = tokenize inner in
  let rec pair = function
    | [] -> Ok []
    | t :: v :: rest ->
      (match (parse_value t, parse_value v) with
       | Ok time, Ok volts ->
         (match pair rest with
          | Ok tail -> Ok ((time, volts) :: tail)
          | Error e -> Error e)
       | Error e, _ | _, Error e -> Error e)
    | [ _ ] -> Error "PWL needs an even number of values"
  in
  match pair tokens with
  | Ok [] -> Error "empty PWL"
  | Ok corners -> Ok (Netlist.Pwl corners)
  | Error e -> Error e

let parse_source_spec tokens =
  (* [DC v] or [PWL(...)] possibly split across tokens. *)
  match tokens with
  | [ dc; v ] when String.uppercase_ascii dc = "DC" ->
    (match parse_value v with
     | Ok volts -> Ok (Netlist.Const volts)
     | Error e -> Error e)
  | [ v ] when String.length v >= 3
            && String.uppercase_ascii (String.sub v 0 3) = "PWL" ->
    parse_pwl v
  | pwl_tokens
    when pwl_tokens <> []
      && String.length (List.hd pwl_tokens) >= 3
      && String.uppercase_ascii (String.sub (List.hd pwl_tokens) 0 3) = "PWL" ->
    parse_pwl (String.concat " " pwl_tokens)
  | [ v ] ->
    (match parse_value v with
     | Ok volts -> Ok (Netlist.Const volts)
     | Error e -> Error e)
  | _ -> Error "expected DC <v> or PWL(...)"

let parse_fin_count token =
  let lower = String.lowercase_ascii token in
  if String.length lower > 5 && String.sub lower 0 5 = "nfin=" then
    match int_of_string_opt (String.sub lower 5 (String.length lower - 5)) with
    | Some k when k > 0 -> Ok k
    | Some _ | None -> Error (Printf.sprintf "bad fin count %S" token)
  else Error (Printf.sprintf "unexpected token %S" token)

let parse ~lib text =
  let st = { netlist = Netlist.create (); names = [] } in
  let error line msg = Error (Printf.sprintf "%s (in %S)" msg line) in
  let parse_line line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '*' then Ok ()
    else if String.lowercase_ascii trimmed = ".end" then Ok ()
    else begin
      match tokenize trimmed with
      | [] -> Ok ()
      | name :: rest ->
        (match (Char.uppercase_ascii name.[0], rest) with
         | 'R', [ a; b; v ] ->
           (match parse_value v with
            | Ok ohms ->
              Netlist.resistor st.netlist ~plus:(resolve st a) ~minus:(resolve st b) ~ohms;
              Ok ()
            | Error e -> error line e)
         | 'C', [ a; b; v ] ->
           (match parse_value v with
            | Ok farads ->
              Netlist.capacitor st.netlist ~plus:(resolve st a) ~minus:(resolve st b) ~farads;
              Ok ()
            | Error e -> error line e)
         | 'V', a :: b :: spec ->
           (match parse_source_spec spec with
            | Ok wave ->
              Netlist.vwave st.netlist ~plus:(resolve st a) ~minus:(resolve st b) ~wave;
              Ok ()
            | Error e -> error line e)
         | 'I', [ a; b; v ] | 'I', [ a; b; "DC"; v ] | 'I', [ a; b; "dc"; v ] ->
           (match parse_value v with
            | Ok amps ->
              Netlist.idc st.netlist ~from_node:(resolve st a) ~to_node:(resolve st b) ~amps;
              Ok ()
            | Error e -> error line e)
         | 'M', d :: g :: s :: model :: fins ->
           (match model_of_name lib model with
            | None -> error line (Printf.sprintf "unknown model %S" model)
            | Some params ->
              let nfin =
                match fins with
                | [] -> Ok 1
                | [ token ] -> parse_fin_count token
                | _ -> Error "too many tokens after the model"
              in
              (match nfin with
               | Ok nfin ->
                 Netlist.fet st.netlist ~params ~nfin ~gate:(resolve st g)
                   ~drain:(resolve st d) ~source:(resolve st s) ();
                 Ok ()
               | Error e -> error line e))
         | _ -> error line "unrecognized element")
    end
  in
  let rec run = function
    | [] ->
      (match Netlist.validate st.netlist with
       | Ok () -> Ok (st.netlist, List.rev st.names)
       | Error e -> Error e)
    | line :: rest ->
      (match parse_line line with Ok () -> run rest | Error e -> Error e)
  in
  run (String.split_on_char '\n' text)

let node bindings name =
  if is_ground name then Some Netlist.ground else List.assoc_opt name bindings

(* --- printing --- *)

let canonical_model params =
  (* Map back to the deck's model vocabulary via the polarity + name. *)
  let name = String.lowercase_ascii params.Finfet.Device.name in
  let has sub =
    let n = String.length sub and h = String.length name in
    let rec go i = i + n <= h && (String.sub name i n = sub || go (i + 1)) in
    go 0
  in
  match (params.Finfet.Device.polarity, has "hvt") with
  | Finfet.Device.Nfet, true -> "nfet_hvt"
  | Finfet.Device.Nfet, false -> "nfet_lvt"
  | Finfet.Device.Pfet, true -> "pfet_hvt"
  | Finfet.Device.Pfet, false -> "pfet_lvt"

let print netlist =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "* generated by Spice.Deck.print\n";
  let name node = if node = 0 then "0" else Netlist.node_name netlist node in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  List.iter
    (fun element ->
      let line =
        match element with
        | Netlist.Resistor { plus; minus; ohms } ->
          Printf.sprintf "%s %s %s %.9g" (fresh "R") (name plus) (name minus) ohms
        | Netlist.Capacitor { plus; minus; farads } ->
          Printf.sprintf "%s %s %s %.9g" (fresh "C") (name plus) (name minus) farads
        | Netlist.Vsource { plus; minus; volts = Netlist.Const v } ->
          Printf.sprintf "%s %s %s DC %.9g" (fresh "V") (name plus) (name minus) v
        | Netlist.Vsource { plus; minus; volts = Netlist.Pwl corners } ->
          Printf.sprintf "%s %s %s PWL(%s)" (fresh "V") (name plus) (name minus)
            (String.concat " "
               (List.concat_map
                  (fun (t, v) -> [ Printf.sprintf "%.9g" t; Printf.sprintf "%.9g" v ])
                  corners))
        | Netlist.Vsource
            { plus; minus; volts = Netlist.Step { t_delay; t_rise; v0; v1 } } ->
          (* Steps print as the equivalent PWL. *)
          Printf.sprintf "%s %s %s PWL(0 %.9g %.9g %.9g %.9g %.9g)" (fresh "V")
            (name plus) (name minus) v0 t_delay v0 (t_delay +. max t_rise 1e-15) v1
        | Netlist.Isource { from_node; to_node; amps } ->
          Printf.sprintf "%s %s %s DC %.9g" (fresh "I") (name from_node)
            (name to_node) amps
        | Netlist.Fet { params; nfin; gate; drain; source } ->
          Printf.sprintf "%s %s %s %s %s nfin=%d" (fresh "M") (name drain)
            (name gate) (name source) (canonical_model params) nfin
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (Netlist.elements netlist);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
