(** Circuit netlists for the DC / transient solvers.

    A netlist is a bag of two- and three-terminal elements over integer
    nodes.  Node 0 is ground.  Voltage sources carry time-dependent
    waveforms so the same netlist drives both operating-point and
    transient analyses. *)

type node = int
(** Node index; [ground] is 0. *)

val ground : node

type waveform =
  | Const of float
      (** Fixed level. *)
  | Step of { t_delay : float; t_rise : float; v0 : float; v1 : float }
      (** [v0] until [t_delay], linear ramp to [v1] over [t_rise], then
          [v1].  A falling edge is expressed with [v1 < v0]. *)
  | Pwl of (float * float) list
      (** Piecewise-linear (time, volts) corners, strictly increasing in
          time; clamps outside the given range. *)

val waveform_at : waveform -> float -> float
(** Evaluate a waveform at a time (DC analyses use t = 0). *)

val waveform_final : waveform -> float
(** Value as t -> infinity. *)

type element =
  | Resistor of { plus : node; minus : node; ohms : float }
  | Capacitor of { plus : node; minus : node; farads : float }
  | Vsource of { plus : node; minus : node; volts : waveform }
  | Isource of { from_node : node; to_node : node; amps : float }
      (** Pushes a constant current out of [from_node] into [to_node]
          through the source (i.e. KCL sees it leaving [from_node]). *)
  | Fet of {
      params : Finfet.Device.params;
      nfin : int;
      gate : node;
      drain : node;
      source : node;
    }

type t
(** A netlist under construction / ready for analysis. *)

val create : unit -> t

val fresh_node : t -> string -> node
(** Allocate a named node.  Names are only for diagnostics. *)

val node_name : t -> node -> string

val add : t -> element -> unit

val num_nodes : t -> int
(** Including ground. *)

val elements : t -> element list
(** In insertion order. *)

val vsource_count : t -> int

val validate : t -> (unit, string) result
(** Checks element terminals refer to allocated nodes, resistor/capacitor
    values are positive, and fin counts are positive. *)

(** Convenience constructors *)

val resistor : t -> plus:node -> minus:node -> ohms:float -> unit
val capacitor : t -> plus:node -> minus:node -> farads:float -> unit
val vdc : t -> plus:node -> minus:node -> volts:float -> unit
val vwave : t -> plus:node -> minus:node -> wave:waveform -> unit
val idc : t -> from_node:node -> to_node:node -> amps:float -> unit

val fet :
  t -> params:Finfet.Device.params -> ?nfin:int ->
  gate:node -> drain:node -> source:node -> unit -> unit
(** Default [nfin] is 1 (the all-single-fin SRAM cell case). *)
