type solution = {
  voltages : float array;
  source_currents : float array;
  converged : bool;
  iterations : int;
}

let gmin = 1e-12

(* Shared MNA assembly.  The unknown vector is
   [v_1 .. v_{n-1}; i_src_1 .. i_src_m].  [companions] replaces capacitors
   by (conductance, equivalent history voltage) pairs for transient steps;
   in pure DC capacitors are open. *)
type companion = { g_eq : float; v_hist : float }

let node_v x node = if node = 0 then 0.0 else x.(node - 1)

let residual ~netlist ~at_time ~source_scale ~companions x =
  let n = Netlist.num_nodes netlist in
  let res = Array.make (n - 1 + Netlist.vsource_count netlist) 0.0 in
  let kcl node amount = if node <> 0 then res.(node - 1) <- res.(node - 1) +. amount in
  (* gmin keeps floating nodes well-posed *)
  for node = 1 to n - 1 do
    kcl node (gmin *. x.(node - 1))
  done;
  let src_index = ref 0 in
  let cap_index = ref 0 in
  let visit e =
    match e with
    | Netlist.Resistor { plus; minus; ohms } ->
      let i = (node_v x plus -. node_v x minus) /. ohms in
      kcl plus i;
      kcl minus (-.i)
    | Netlist.Capacitor { plus; minus; _ } ->
      (match companions with
       | None -> ()
       | Some comps ->
         let { g_eq; v_hist } = comps.(!cap_index) in
         incr cap_index;
         let i = g_eq *. (node_v x plus -. node_v x minus -. v_hist) in
         kcl plus i;
         kcl minus (-.i))
    | Netlist.Vsource { plus; minus; volts } ->
      let k = !src_index in
      incr src_index;
      let i = x.(n - 1 + k) in
      kcl plus i;
      kcl minus (-.i);
      let target = source_scale *. Netlist.waveform_at volts at_time in
      res.(n - 1 + k) <- node_v x plus -. node_v x minus -. target
    | Netlist.Isource { from_node; to_node; amps } ->
      let i = source_scale *. amps in
      kcl from_node i;
      kcl to_node (-.i)
    | Netlist.Fet { params; nfin; gate; drain; source } ->
      let i =
        Finfet.Device.drain_source_current params ~nfin ~vg:(node_v x gate)
          ~vd:(node_v x drain) ~vs:(node_v x source)
      in
      kcl drain i;
      kcl source (-.i)
  in
  List.iter visit (Netlist.elements netlist);
  res

let jacobian ~netlist ~companions x =
  let n = Netlist.num_nodes netlist in
  let dim = n - 1 + Netlist.vsource_count netlist in
  let jac = Numerics.Matrix.create ~rows:dim ~cols:dim in
  let stamp_kcl node col g =
    if node <> 0 && col >= 0 then Numerics.Matrix.add_to jac (node - 1) col g
  in
  let vcol node = node - 1 in
  for node = 1 to n - 1 do
    stamp_kcl node (vcol node) gmin
  done;
  let src_index = ref 0 in
  let cap_index = ref 0 in
  let visit e =
    match e with
    | Netlist.Resistor { plus; minus; ohms } ->
      let g = 1.0 /. ohms in
      if plus <> 0 then begin
        stamp_kcl plus (vcol plus) g;
        if minus <> 0 then stamp_kcl plus (vcol minus) (-.g)
      end;
      if minus <> 0 then begin
        stamp_kcl minus (vcol minus) g;
        if plus <> 0 then stamp_kcl minus (vcol plus) (-.g)
      end
    | Netlist.Capacitor { plus; minus; _ } ->
      (match companions with
       | None -> ()
       | Some comps ->
         let { g_eq; _ } = comps.(!cap_index) in
         incr cap_index;
         if plus <> 0 then begin
           stamp_kcl plus (vcol plus) g_eq;
           if minus <> 0 then stamp_kcl plus (vcol minus) (-.g_eq)
         end;
         if minus <> 0 then begin
           stamp_kcl minus (vcol minus) g_eq;
           if plus <> 0 then stamp_kcl minus (vcol plus) (-.g_eq)
         end)
    | Netlist.Vsource { plus; minus; _ } ->
      let k = !src_index in
      incr src_index;
      let row = n - 1 + k in
      (* Branch current enters the KCL rows... *)
      if plus <> 0 then Numerics.Matrix.add_to jac (plus - 1) row 1.0;
      if minus <> 0 then Numerics.Matrix.add_to jac (minus - 1) row (-1.0);
      (* ...and the source's constraint row pins the terminal difference. *)
      if plus <> 0 then Numerics.Matrix.add_to jac row (vcol plus) 1.0;
      if minus <> 0 then Numerics.Matrix.add_to jac row (vcol minus) (-1.0)
    | Netlist.Isource _ -> ()
    | Netlist.Fet { params; nfin; gate; drain; source } ->
      (* Local finite-difference transconductances. *)
      let h = 1e-7 in
      let vg = node_v x gate and vd = node_v x drain and vs = node_v x source in
      let i0 = Finfet.Device.drain_source_current params ~nfin ~vg ~vd ~vs in
      let gm =
        (Finfet.Device.drain_source_current params ~nfin ~vg:(vg +. h) ~vd ~vs -. i0) /. h
      in
      let gds =
        (Finfet.Device.drain_source_current params ~nfin ~vg ~vd:(vd +. h) ~vs -. i0) /. h
      in
      let gs =
        (Finfet.Device.drain_source_current params ~nfin ~vg ~vd ~vs:(vs +. h) -. i0) /. h
      in
      if drain <> 0 then begin
        stamp_kcl drain (vcol gate) gm;
        stamp_kcl drain (vcol drain) gds;
        stamp_kcl drain (vcol source) gs
      end;
      if source <> 0 then begin
        stamp_kcl source (vcol gate) (-.gm);
        stamp_kcl source (vcol drain) (-.gds);
        stamp_kcl source (vcol source) (-.gs)
      end
  in
  List.iter visit (Netlist.elements netlist);
  jac

(* Sparse mirror of the Jacobian stamps, for large netlists. *)
let jacobian_sparse ~netlist ~companions x =
  let n = Netlist.num_nodes netlist in
  let dim = n - 1 + Netlist.vsource_count netlist in
  let builder = Numerics.Sparse.Builder.create ~n:dim in
  let stamp_kcl node col g =
    if node <> 0 && col >= 0 then Numerics.Sparse.Builder.add builder (node - 1) col g
  in
  let vcol node = node - 1 in
  for node = 1 to n - 1 do
    stamp_kcl node (vcol node) gmin
  done;
  let src_index = ref 0 in
  let cap_index = ref 0 in
  let visit e =
    match e with
    | Netlist.Resistor { plus; minus; ohms } ->
      let g = 1.0 /. ohms in
      if plus <> 0 then begin
        stamp_kcl plus (vcol plus) g;
        if minus <> 0 then stamp_kcl plus (vcol minus) (-.g)
      end;
      if minus <> 0 then begin
        stamp_kcl minus (vcol minus) g;
        if plus <> 0 then stamp_kcl minus (vcol plus) (-.g)
      end
    | Netlist.Capacitor { plus; minus; _ } ->
      (match companions with
       | None -> ()
       | Some comps ->
         let { g_eq; _ } = comps.(!cap_index) in
         incr cap_index;
         if plus <> 0 then begin
           stamp_kcl plus (vcol plus) g_eq;
           if minus <> 0 then stamp_kcl plus (vcol minus) (-.g_eq)
         end;
         if minus <> 0 then begin
           stamp_kcl minus (vcol minus) g_eq;
           if plus <> 0 then stamp_kcl minus (vcol plus) (-.g_eq)
         end)
    | Netlist.Vsource { plus; minus; _ } ->
      let k = !src_index in
      incr src_index;
      let row = n - 1 + k in
      if plus <> 0 then Numerics.Sparse.Builder.add builder (plus - 1) row 1.0;
      if minus <> 0 then Numerics.Sparse.Builder.add builder (minus - 1) row (-1.0);
      if plus <> 0 then Numerics.Sparse.Builder.add builder row (vcol plus) 1.0;
      if minus <> 0 then Numerics.Sparse.Builder.add builder row (vcol minus) (-1.0)
    | Netlist.Isource _ -> ()
    | Netlist.Fet { params; nfin; gate; drain; source } ->
      let h = 1e-7 in
      let vg = node_v x gate and vd = node_v x drain and vs = node_v x source in
      let i0 = Finfet.Device.drain_source_current params ~nfin ~vg ~vd ~vs in
      let gm =
        (Finfet.Device.drain_source_current params ~nfin ~vg:(vg +. h) ~vd ~vs -. i0) /. h
      in
      let gds =
        (Finfet.Device.drain_source_current params ~nfin ~vg ~vd:(vd +. h) ~vs -. i0) /. h
      in
      let gs =
        (Finfet.Device.drain_source_current params ~nfin ~vg ~vd ~vs:(vs +. h) -. i0) /. h
      in
      if drain <> 0 then begin
        stamp_kcl drain (vcol gate) gm;
        stamp_kcl drain (vcol drain) gds;
        stamp_kcl drain (vcol source) gs
      end;
      if source <> 0 then begin
        stamp_kcl source (vcol gate) (-.gm);
        stamp_kcl source (vcol drain) (-.gds);
        stamp_kcl source (vcol source) (-.gs)
      end
  in
  List.iter visit (Netlist.elements netlist);
  Numerics.Sparse.of_builder builder

let sparse_dimension_threshold = 80

let sparse_step ~netlist ~companions x neg_f =
  (* Retry with growing diagonal regularization on singular systems, the
     sparse counterpart of the dense gmin stepping. *)
  let dim = Array.length neg_f in
  let rec attempt extra_gmin =
    let base = jacobian_sparse ~netlist ~companions x in
    let jac =
      if extra_gmin = 0.0 then base
      else begin
        let b = Numerics.Sparse.Builder.create ~n:dim in
        Numerics.Sparse.iter base (fun i j v -> Numerics.Sparse.Builder.add b i j v);
        for i = 0 to dim - 1 do
          Numerics.Sparse.Builder.add b i i extra_gmin
        done;
        Numerics.Sparse.of_builder b
      end
    in
    match Numerics.Sparse_lu.solve jac neg_f with
    | dx -> dx
    | exception Numerics.Lu.Singular ->
      if extra_gmin > 1.0 then Array.make dim 0.0
      else attempt (if extra_gmin = 0.0 then 1e-12 else extra_gmin *. 100.0)
  in
  attempt 0.0

let solve_scaled ~netlist ~at_time ~source_scale ~companions ~x0 =
  let dim = Array.length x0 in
  if dim >= sparse_dimension_threshold then
    Numerics.Newton.solve_custom ~tol:1e-12 ~max_iter:150 ~max_step:0.15
      ~residual:(residual ~netlist ~at_time ~source_scale ~companions)
      ~solve_step:(sparse_step ~netlist ~companions)
      ~x0 ()
  else
    Numerics.Newton.solve ~tol:1e-12 ~max_iter:150 ~max_step:0.15
      ~residual:(residual ~netlist ~at_time ~source_scale ~companions)
      ~jacobian:(jacobian ~netlist ~companions)
      ~x0 ()

let unpack netlist (result : Numerics.Newton.result) ~iterations =
  let n = Netlist.num_nodes netlist in
  let voltages = Array.make n 0.0 in
  Array.blit result.Numerics.Newton.x 0 voltages 1 (n - 1);
  let source_currents =
    Array.sub result.Numerics.Newton.x (n - 1) (Netlist.vsource_count netlist)
  in
  { voltages; source_currents;
    converged = result.Numerics.Newton.converged;
    iterations }

let solve_with_companions ?x0 ?(at_time = 0.0) ~companions netlist =
  (match Netlist.validate netlist with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Dc.operating_point: " ^ msg));
  let dim = Netlist.num_nodes netlist - 1 + Netlist.vsource_count netlist in
  let start = match x0 with Some v -> Array.copy v | None -> Array.make dim 0.0 in
  let direct = solve_scaled ~netlist ~at_time ~source_scale:1.0 ~companions ~x0:start in
  if direct.Numerics.Newton.converged then
    unpack netlist direct ~iterations:direct.Numerics.Newton.iterations
  else begin
    (* Source stepping: ramp every source from zero, warm-starting. *)
    let scales = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
    let x = ref (Array.make dim 0.0) in
    let total = ref direct.Numerics.Newton.iterations in
    let last = ref direct in
    List.iter
      (fun scale ->
        let r = solve_scaled ~netlist ~at_time ~source_scale:scale ~companions ~x0:!x in
        total := !total + r.Numerics.Newton.iterations;
        x := r.Numerics.Newton.x;
        last := r)
      scales;
    unpack netlist !last ~iterations:!total
  end

let operating_point ?x0 ?(at_time = 0.0) netlist =
  solve_with_companions ?x0 ~at_time ~companions:None netlist

let operating_point_companioned ?x0 ~at_time ~companions netlist =
  solve_with_companions ?x0 ~at_time ~companions:(Some companions) netlist

let solution_vector s =
  Array.append (Array.sub s.voltages 1 (Array.length s.voltages - 1)) s.source_currents

let small_signal_conductance netlist s =
  jacobian_sparse ~netlist ~companions:None (solution_vector s)

let sweep ~build ~points =
  let prev = ref None in
  Array.map
    (fun p ->
      let netlist = build p in
      let s = operating_point ?x0:!prev netlist in
      prev := Some (solution_vector s);
      s)
    points

let node_voltage s node = s.voltages.(node)
