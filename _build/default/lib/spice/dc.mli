(** DC operating-point analysis (the MNA solve at the heart of every
    butterfly curve, margin extraction and leakage measurement).

    Unknowns are the non-ground node voltages plus one branch current per
    voltage source (modified nodal analysis).  The nonlinear system is
    solved by damped Newton with a voltage-scale trust region; when the
    flat start fails to converge, the solver ramps all sources from zero
    (source stepping), warm-starting each step. *)

type solution = {
  voltages : float array;
      (** Indexed by node id, [voltages.(0) = 0] (ground). *)
  source_currents : float array;
      (** One per voltage source, in netlist insertion order; positive
          current flows into the + terminal and through the source. *)
  converged : bool;
  iterations : int;  (** Total Newton iterations across all ramp steps. *)
}

val gmin : float
(** Conductance tied from every node to ground (1e-12 S) so that floating
    gates are well-posed. *)

val operating_point :
  ?x0:float array -> ?at_time:float -> Netlist.t -> solution
(** Solve the operating point with sources evaluated at [at_time]
    (default 0).  [x0] warm-starts the Newton iteration (layout: node
    voltages 1..n-1, then source currents). *)

val solution_vector : solution -> float array
(** Repack a solution as a warm-start vector for {!operating_point}. *)

val sweep :
  build:(float -> Netlist.t) -> points:float array -> solution array
(** [sweep ~build ~points] solves [build p] for each point, warm-starting
    each solve from the previous solution (the netlist structure must not
    change between points).  This is the primitive behind VTC and butterfly
    curves. *)

val node_voltage : solution -> Netlist.node -> float

(** {1 Transient backend hook} *)

type companion = { g_eq : float; v_hist : float }
(** Backward-Euler companion model of a capacitor: a conductance
    [g_eq = C/h] in parallel with the history term, so the stamped current
    is [g_eq * (v - v_hist)]. *)

val operating_point_companioned :
  ?x0:float array -> at_time:float -> companions:companion array ->
  Netlist.t -> solution
(** Operating point with every capacitor replaced by its companion model,
    in netlist insertion order.  Used by {!Transient}; exposed for tests. *)

val small_signal_conductance : Netlist.t -> solution -> Numerics.Sparse.t
(** The MNA Jacobian linearized at the operating point, capacitors open —
    the G matrix of AC analysis ({!Ac}).  Includes the voltage-source
    constraint rows and the gmin ties. *)
