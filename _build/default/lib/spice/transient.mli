(** Transient analysis by backward Euler over capacitor companion models.

    Each time step is a DC solve with capacitors replaced by a conductance
    C/h plus history term, warm-started from the previous step — the
    classical SPICE integration scheme, unconditionally stable for the
    stiff node equations produced by strong transistors on small caps. *)

type trace = {
  times : float array;
  voltages : float array array;
      (** [voltages.(k).(node)] — full node-voltage vector at step k. *)
  source_currents : float array array;
      (** [source_currents.(k).(i)] — branch current of the i-th voltage
          source (netlist order) at step k; positive into the + terminal. *)
}

type method_ =
  | Backward_euler
      (** first-order, L-stable: never rings, the robust default *)
  | Trapezoidal
      (** second-order, A-stable: twice the accuracy order at the same
          step, the standard SPICE workhorse *)

val run :
  ?dt:float ->
  ?ic:(Netlist.node * float) list ->
  ?method_:method_ ->
  t_stop:float ->
  Netlist.t ->
  trace
(** [run ~t_stop netlist] integrates from 0 to [t_stop].

    [dt] is the fixed step (default [t_stop /. 400]); [method_] defaults
    to {!Backward_euler}.
    [ic] pins initial node voltages; all other nodes start from the DC
    operating point at t = 0 computed with sources at their t = 0 values.
    Initial conditions are applied after that solve, so use them for
    storage nodes whose state is not determined by the sources. *)

val run_adaptive :
  ?dt_min:float ->
  ?dt_max:float ->
  ?dv_max:float ->
  ?ic:(Netlist.node * float) list ->
  ?method_:method_ ->
  t_stop:float ->
  Netlist.t ->
  trace
(** Delta-V-controlled variable stepping: a step whose largest node-voltage
    change exceeds [dv_max] (default 30 mV) is rejected and retried at
    half the step; quiet steps grow by 1.5x up to [dt_max] (default
    t_stop / 20).  [dt_min] (default t_stop / 1e5) bounds refinement.
    Sharp edges get small steps, flat tails get long ones — typically a
    several-fold step-count saving over the fixed-step {!run} at equal
    accuracy (measured in the test suite). *)

val node_trace : trace -> Netlist.node -> float array
(** Voltage-versus-time samples of one node. *)

val crossing_time :
  trace -> node:Netlist.node -> threshold:float ->
  direction:[ `Rising | `Falling ] -> float option
(** Linear-interpolated first crossing, the delay-measurement primitive. *)

val value_at : trace -> node:Netlist.node -> time:float -> float
(** Linear interpolation of a node voltage at an arbitrary time. *)

val source_energy : trace -> Netlist.t -> source_index:int -> float
(** Energy delivered by one voltage source over the whole trace:
    the trapezoidal integral of -V(t) I_branch(t) dt.  Charging a
    capacitance C through any resistance from a fixed source costs C V^2
    (half stored, half dissipated) — the measurement behind the
    switching-energy validation tests. *)

val delivered_energy : trace -> Netlist.t -> float
(** Sum of {!source_energy} over every source. *)
