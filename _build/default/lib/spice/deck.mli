(** Text netlists: a SPICE-deck subset, parsed and printed.

    Interop with the rest of the CAD world happens through decks, so the
    simulator reads and writes one:

    {v
    * comment
    R1   in out 1k
    C1   out 0  1n
    VDD  vdd 0  DC 0.45
    VIN  in  0  PWL(0 0 1n 0.45)
    M1   out in 0 nfet_lvt nfin=2
    .end
    v}

    - Node names are free-form; [0], [gnd] and [GND] are ground.
    - Values accept engineering suffixes
      (f p n u m k meg g, case-insensitive).
    - FET model names are [nfet_lvt | nfet_hvt | pfet_lvt | pfet_hvt],
      resolved against a {!Finfet.Library.t}; terminal order is
      drain gate source.
    - Voltage sources take [DC v] or [PWL(t1 v1 t2 v2 ...)];
      current sources take [DC v] ([from] = +, [to] = -). *)

type bindings = (string * Netlist.node) list
(** Name-to-node mapping produced by the parser (excludes ground). *)

val parse_value : string -> (float, string) result
(** "4.7k" -> 4700.0; "0.1u" -> 1e-7; "3meg" -> 3e6. *)

val parse :
  lib:Finfet.Library.t -> string -> (Netlist.t * bindings, string) result
(** Parse a whole deck.  Errors carry the offending line. *)

val node : bindings -> string -> Netlist.node option
(** Look up a parsed node by its deck name (ground resolves to
    [Netlist.ground]). *)

val print : Netlist.t -> string
(** Render a netlist as a deck (element names are generated; node names
    come from the netlist's own naming).  [parse] of the result builds an
    electrically identical circuit — the round-trip property the test
    suite checks. *)
