(** Small-signal (AC) frequency-domain analysis.

    The netlist is linearized at its DC operating point: resistors and
    transistor transconductances populate the G matrix (via
    {!Dc.small_signal_conductance}), capacitors the C matrix, and the
    complex system (G + j omega C) x = b is solved per frequency as the
    equivalent 2n real system — reusing the sparse LU.

    The stimulus is one voltage source driven with a unit AC amplitude;
    every other source is AC-grounded (its DC level only sets the
    operating point), exactly SPICE's `.AC` semantics. *)

type point = {
  frequency : float;   (** Hz *)
  magnitude : float;   (** |V(output)| per unit stimulus *)
  phase : float;       (** radians, in (-pi, pi] *)
}

val at_frequency :
  Netlist.t -> source_index:int -> output:Netlist.node -> frequency:float ->
  point
(** One solve.  [source_index] counts voltage sources in insertion order.
    @raise Invalid_argument on a bad source index or output node. *)

val sweep :
  ?points_per_decade:int ->
  Netlist.t ->
  source_index:int ->
  output:Netlist.node ->
  f_start:float ->
  f_stop:float ->
  point list
(** Logarithmic sweep (default 10 points/decade), endpoints included. *)

val dc_gain :
  Netlist.t -> source_index:int -> output:Netlist.node -> float
(** Signed low-frequency gain (the omega = 0 solve, real-valued). *)

val corner_frequency :
  ?points_per_decade:int ->
  Netlist.t ->
  source_index:int ->
  output:Netlist.node ->
  f_start:float ->
  f_stop:float ->
  float option
(** First frequency at which the magnitude falls to 1/sqrt(2) of the DC
    gain (interpolated between sweep points). *)
