(** Read and write assist techniques (Section 3 of the paper).

    Read assists act on the cell's static read condition; write assists on
    the write condition.  Each technique is parameterized by its single
    voltage knob, and {!read_condition} / {!write_condition} translate a
    (technique, voltage) pair into the cell-level condition the margin and
    dynamics analyses consume. *)

type read_assist =
  | Wl_underdrive   (** V_WL below Vdd during read: stabilizes, slows *)
  | Vdd_boost       (** cell supply raised to V_DDC > Vdd during read *)
  | Negative_gnd    (** cell ground pulled to V_SSC < 0 during read *)

type write_assist =
  | Wl_overdrive    (** V_WL above Vdd during write *)
  | Negative_bl     (** write-0 bitline driven below ground *)

val read_assist_name : read_assist -> string
val write_assist_name : write_assist -> string

val read_condition :
  ?vdd:float -> read_assist -> voltage:float -> Sram_cell.Sram6t.condition
(** The static read condition with the given technique applied at
    [voltage] (the technique's own knob: V_WL, V_DDC or V_SSC) and every
    other rail nominal. *)

val write_condition :
  ?vdd:float -> write_assist -> voltage:float -> Sram_cell.Sram6t.condition
(** The write-0 condition with the technique applied ([voltage] is V_WL
    for overdrive, the negative BL level otherwise). *)

val default_read_range : read_assist -> float array
(** The sweep the paper plots: WLUD 250..450 mV, boost 450..700 mV,
    negative Gnd 0..-240 mV. *)

val default_write_range : write_assist -> float array
(** WLOD 450..660 mV, negative BL 0..-150 mV. *)
