type read_assist = Wl_underdrive | Vdd_boost | Negative_gnd

type write_assist = Wl_overdrive | Negative_bl

let read_assist_name = function
  | Wl_underdrive -> "WL underdrive"
  | Vdd_boost -> "Vdd boost"
  | Negative_gnd -> "negative Gnd"

let write_assist_name = function
  | Wl_overdrive -> "WL overdrive"
  | Negative_bl -> "negative BL"

let read_condition ?(vdd = Finfet.Tech.vdd_nominal) technique ~voltage =
  match technique with
  | Wl_underdrive -> Sram_cell.Sram6t.read ~vdd ~vwl:voltage ()
  | Vdd_boost -> Sram_cell.Sram6t.read ~vdd ~vddc:voltage ()
  | Negative_gnd -> Sram_cell.Sram6t.read ~vdd ~vssc:voltage ()

let write_condition ?(vdd = Finfet.Tech.vdd_nominal) technique ~voltage =
  match technique with
  | Wl_overdrive -> Sram_cell.Sram6t.write0 ~vdd ~vwl:voltage ()
  | Negative_bl -> Sram_cell.Sram6t.write0 ~vdd ~vbl:voltage ()

let range ~lo ~hi ~step =
  let n = int_of_float (Float.round (abs_float (hi -. lo) /. step)) + 1 in
  Array.init n (fun i ->
      lo +. (float_of_int i *. (if hi >= lo then step else -.step)))

let default_read_range = function
  | Wl_underdrive -> range ~lo:0.250 ~hi:0.450 ~step:0.025
  | Vdd_boost -> range ~lo:0.450 ~hi:0.700 ~step:0.025
  | Negative_gnd -> range ~lo:0.0 ~hi:(-0.240) ~step:0.030

let default_write_range = function
  | Wl_overdrive -> range ~lo:0.450 ~hi:0.660 ~step:0.030
  | Negative_bl -> range ~lo:0.0 ~hi:(-0.150) ~step:0.025
