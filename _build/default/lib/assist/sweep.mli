(** Assist-voltage sweeps: the data behind Figures 3(b)-(d) and 5(a)-(b).

    Read sweeps report the read SNM and the bitline delay of a reference
    64-cell column; write sweeps report the write margin and the
    cell-level write delay.  Crossing extraction locates the marker points
    the paper prints (minimum voltage meeting the yield requirement;
    voltage at which the assisted HVT column matches the unassisted LVT
    one). *)

type read_point = {
  voltage : float;
  rsnm : float;
  read_current : float;
  bl_delay : float;
}

val reference_column : Array_model.Geometry.t
(** The 64-row column the paper assumes for Figure 3's bitline delays. *)

val bl_delay_of_current : ?geometry:Array_model.Geometry.t -> flavor:Finfet.Library.flavor -> float -> float
(** C_BL * Delta V_S / I for the reference column. *)

val read_sweep :
  ?points:int ->
  ?geometry:Array_model.Geometry.t ->
  flavor:Finfet.Library.flavor ->
  technique:Technique.read_assist ->
  voltages:float array ->
  unit ->
  read_point array
(** One point per assist voltage.  [points] is butterfly resolution. *)

type write_point = {
  voltage : float;
  wm : float;
  cell_write_delay : float;
}

val write_sweep :
  flavor:Finfet.Library.flavor ->
  technique:Technique.write_assist ->
  voltages:float array ->
  unit ->
  write_point array

val crossing_voltage :
  points:(float * float) array -> threshold:float -> float option
(** Given (voltage, metric) samples ordered along the sweep, the
    interpolated voltage at which the metric first crosses [threshold]
    (in either direction). *)
