lib/assist/sweep.mli: Array_model Finfet Technique
