lib/assist/technique.ml: Array Finfet Float Sram_cell
