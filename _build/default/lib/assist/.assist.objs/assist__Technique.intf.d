lib/assist/technique.mli: Sram_cell
