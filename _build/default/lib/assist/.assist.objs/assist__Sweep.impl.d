lib/assist/sweep.ml: Array Array_model Finfet Lazy Sram_cell Technique
