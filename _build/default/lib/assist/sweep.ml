type read_point = {
  voltage : float;
  rsnm : float;
  read_current : float;
  bl_delay : float;
}

let reference_column = Array_model.Geometry.create ~nr:64 ~nc:64 ~n_pre:1 ~n_wr:1 ()

let bl_delay_of_current ?(geometry = reference_column) ~flavor current =
  let lib = Lazy.force Finfet.Library.default in
  let dcaps =
    Array_model.Caps.device_caps_of
      ~nfet:(Finfet.Library.nfet lib flavor)
      ~pfet:(Finfet.Library.pfet lib flavor)
      ()
  in
  let c_bl = Array_model.Caps.bl dcaps geometry in
  if current <= 0.0 then infinity
  else c_bl *. Finfet.Tech.delta_v_sense /. current

let read_sweep ?points ?(geometry = reference_column) ~flavor ~technique
    ~voltages () =
  let lib = Lazy.force Finfet.Library.default in
  let nfet = Finfet.Library.nfet lib flavor in
  let cell =
    Finfet.Variation.nominal_cell ~nfet ~pfet:(Finfet.Library.pfet lib flavor)
  in
  let point voltage =
    let condition = Technique.read_condition technique ~voltage in
    let rsnm = Sram_cell.Margins.read_snm ?points ~cell condition in
    let read_current =
      Finfet.Calibration.stack_read_current ~access:nfet ~pull_down:nfet
        ~vwl:condition.Sram_cell.Sram6t.vwl
        ~vbl:condition.Sram_cell.Sram6t.vbl
        ~vddc:condition.Sram_cell.Sram6t.vddc
        ~vssc:condition.Sram_cell.Sram6t.vssc
    in
    { voltage; rsnm; read_current;
      bl_delay = bl_delay_of_current ~geometry ~flavor read_current }
  in
  Array.map point voltages

type write_point = {
  voltage : float;
  wm : float;
  cell_write_delay : float;
}

let write_sweep ~flavor ~technique ~voltages () =
  let lib = Lazy.force Finfet.Library.default in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib flavor)
      ~pfet:(Finfet.Library.pfet lib flavor)
  in
  let point voltage =
    let condition = Technique.write_condition technique ~voltage in
    let wm = Sram_cell.Margins.write_margin ~cell condition in
    let wd = Sram_cell.Dynamics.write_delay ~cell condition in
    { voltage; wm;
      cell_write_delay =
        (if wd.Sram_cell.Dynamics.flipped then wd.Sram_cell.Dynamics.delay
         else infinity) }
  in
  Array.map point voltages

let crossing_voltage ~points ~threshold =
  let n = Array.length points in
  let rec scan k =
    if k >= n then None
    else begin
      let v0, m0 = points.(k - 1) in
      let v1, m1 = points.(k) in
      if (m0 -. threshold) *. (m1 -. threshold) <= 0.0 && m0 <> m1 then
        Some (v0 +. ((threshold -. m0) /. (m1 -. m0) *. (v1 -. v0)))
      else scan (k + 1)
    end
  in
  if n < 2 then None else scan 1
