(** Descriptive statistics over float arrays, used by Monte Carlo yield
    analysis and benchmark reporting. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton arrays. *)

val stddev : float array -> float
(** Square root of [variance]. *)

val min_max : float array -> float * float
(** Smallest and largest element. Requires a non-empty array. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [0,100]: linear-interpolated quantile of
    the sorted data. Requires a non-empty array. *)

val geometric_mean : float array -> float
(** Geometric mean; requires all elements strictly positive. *)

val mu_minus_k_sigma : float array -> k:float -> float
(** [mean - k * stddev], the yield metric used for SRAM margin analysis. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Gaussian cumulative distribution (Abramowitz-Stegun 7.1.26 erf
    approximation, |error| < 1.5e-7): the tail calculus behind cell
    failure probabilities. *)

val log_choose : int -> int -> float
(** ln C(n, k) via [log_gamma]; exact enough for binomial tails over
    thousands of rows. *)

val binomial_cdf : n:int -> p:float -> int -> float
(** P(X <= k) for X ~ Binomial(n, p), summed in log space — the
    spare-row repair yield formula. *)
