(** Deterministic pseudo-random number generation.

    A small, explicitly-seeded generator (xoshiro256 "star-star") so Monte Carlo
    analyses are reproducible across runs and machines.  No hidden global
    state: every consumer carries its own [t]. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed via splitmix64
    expansion.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val uniform : t -> float
(** Uniform draw in [0, 1). *)

val uniform_range : t -> lo:float -> hi:float -> float
(** Uniform draw in [lo, hi). Requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw via the Box-Muller transform. *)

val int_below : t -> int -> int
(** [int_below t n] draws uniformly from 0..n-1. Requires [n > 0]. *)

val split : t -> t
(** Derive an independent generator (for parallel sub-streams). *)
