type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 expands a single seed into well-distributed 64-bit words,
   which is the recommended way to initialize xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let uniform t =
  (* Take the top 53 bits for a double in [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. uniform t)

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0 by nudging u1 away from zero. *)
  let u1 = max (uniform t) 1e-300 in
  let u2 = uniform t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let int_below t n =
  assert (n > 0);
  let x = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int n))

let split t =
  let seed = Int64.to_int (next t) land max_int in
  create ~seed
