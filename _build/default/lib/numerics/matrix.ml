type t = { data : float array; nrows : int; ncols : int }

let create ~rows ~cols =
  assert (rows > 0 && cols > 0);
  { data = Array.make (rows * cols) 0.0; nrows = rows; ncols = cols }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let of_arrays rows_arr =
  let nrows = Array.length rows_arr in
  assert (nrows > 0);
  let ncols = Array.length rows_arr.(0) in
  Array.iter (fun r -> assert (Array.length r = ncols)) rows_arr;
  let m = create ~rows:nrows ~cols:ncols in
  for i = 0 to nrows - 1 do
    Array.blit rows_arr.(i) 0 m.data (i * ncols) ncols
  done;
  m

let rows m = m.nrows
let cols m = m.ncols

let get m i j =
  assert (i >= 0 && i < m.nrows && j >= 0 && j < m.ncols);
  m.data.((i * m.ncols) + j)

let set m i j x =
  assert (i >= 0 && i < m.nrows && j >= 0 && j < m.ncols);
  m.data.((i * m.ncols) + j) <- x

let add_to m i j x =
  assert (i >= 0 && i < m.nrows && j >= 0 && j < m.ncols);
  let k = (i * m.ncols) + j in
  m.data.(k) <- m.data.(k) +. x

let copy m = { m with data = Array.copy m.data }
let fill m x = Array.fill m.data 0 (Array.length m.data) x

let mat_vec m v =
  assert (Array.length v = m.ncols);
  Array.init m.nrows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.ncols - 1 do
        acc := !acc +. (m.data.((i * m.ncols) + j) *. v.(j))
      done;
      !acc)

let transpose m =
  let t = create ~rows:m.ncols ~cols:m.nrows in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      t.data.((j * t.ncols) + i) <- m.data.((i * m.ncols) + j)
    done
  done;
  t

let mat_mul a b =
  assert (a.ncols = b.nrows);
  let c = create ~rows:a.nrows ~cols:b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = a.data.((i * a.ncols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.ncols - 1 do
          c.data.((i * c.ncols) + j) <-
            c.data.((i * c.ncols) + j) +. (aik *. b.data.((k * b.ncols) + j))
        done
    done
  done;
  c

let to_arrays m =
  Array.init m.nrows (fun i -> Array.sub m.data (i * m.ncols) m.ncols)

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.ncols - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " ]@."
  done
