exception Singular

type factors = { lu : Matrix.t; perm : int array }

let pivot_threshold = 1e-14

let factorize m =
  let n = Matrix.rows m in
  assert (Matrix.cols m = n);
  let lu = Matrix.copy m in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining |entry| in column k up. *)
    let pivot_row = ref k in
    let pivot_val = ref (abs_float (Matrix.get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = abs_float (Matrix.get lu i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < pivot_threshold then raise Singular;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp
    end;
    let pivot = Matrix.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pivot in
      Matrix.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Matrix.add_to lu i j (-.factor *. Matrix.get lu k j)
        done
    done
  done;
  { lu; perm }

let solve_factored { lu; perm } b =
  let n = Matrix.rows lu in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit-lower L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get lu i i
  done;
  x

let solve m b = solve_factored (factorize m) b

let det { lu; perm } =
  let n = Matrix.rows lu in
  (* Sign of the permutation: count transpositions. *)
  let visited = Array.make n false in
  let sign = ref 1.0 in
  for i = 0 to n - 1 do
    if not visited.(i) then begin
      let len = ref 0 in
      let j = ref i in
      while not visited.(!j) do
        visited.(!j) <- true;
        j := perm.(!j);
        incr len
      done;
      if !len mod 2 = 0 then sign := -. !sign
    end
  done;
  let d = ref !sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let solve_least_squares a b =
  let at = Matrix.transpose a in
  let ata = Matrix.mat_mul at a in
  let atb = Matrix.mat_vec at b in
  solve ata atb
