(** Scalar root finding and 1-D minimization.

    These drive the circuit solvers (single-node DC solves), noise-margin
    searches (largest-square extraction) and the yield-constraint voltage
    solves (minimum assist voltage meeting a margin target). *)

exception No_bracket
(** Raised when the supplied interval does not bracket a root. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** [bisect f ~lo ~hi] finds [x] with [f x = 0] assuming [f lo] and [f hi]
    have opposite signs.  @raise No_bracket otherwise.
    [tol] is the absolute interval tolerance (default 1e-12). *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method: inverse-quadratic interpolation with bisection fallback.
    Same contract as {!bisect}, typically far fewer evaluations. *)

val newton_scalar :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> float
(** [newton_scalar ~f ~df x0]: Newton iteration with analytic derivative;
    falls back to small damped steps when the derivative is tiny.  Returns
    the last iterate when [max_iter] is exhausted. *)

val golden_min :
  ?tol:float -> (float -> float) -> lo:float -> hi:float -> float * float
(** [golden_min f ~lo ~hi] minimizes a unimodal [f] on [lo, hi] by
    golden-section search; returns [(argmin, min)]. *)

val find_bracket :
  (float -> float) -> lo:float -> hi:float -> n:int -> (float * float) option
(** Scan [n] equal subintervals of [lo, hi] and return the first that
    brackets a sign change of [f], if any. *)
