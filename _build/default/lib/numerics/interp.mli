(** Lookup tables with interpolation.

    The paper stores SPICE-characterized delay/energy components "with
    dependencies on a variable ... in look-up tables"; these are those
    tables.  1-D tables interpolate linearly (optionally clamping or
    extrapolating at the ends); 2-D tables interpolate bilinearly. *)

type extrapolation =
  | Clamp        (** hold the boundary value outside the domain *)
  | Extrapolate  (** continue the boundary segment's slope *)
  | Error        (** raise [Invalid_argument] outside the domain *)

module Table1d : sig
  type t

  val create : ?extrapolation:extrapolation -> float array -> float array -> t
  (** [create xs ys]: [xs] must be strictly increasing and the arrays of
      equal length >= 2.  Default extrapolation is [Clamp]. *)

  val of_fn : ?extrapolation:extrapolation -> lo:float -> hi:float -> n:int ->
    (float -> float) -> t
  (** Sample a function on [n] equally spaced points (n >= 2). *)

  val eval : t -> float -> float

  val domain : t -> float * float

  val xs : t -> float array
  val ys : t -> float array
end

module Table2d : sig
  type t

  val create :
    ?extrapolation:extrapolation ->
    xs:float array -> ys:float array -> float array array -> t
  (** [create ~xs ~ys zs]: [zs.(i).(j)] is the value at [(xs.(i), ys.(j))].
      Both axes strictly increasing. *)

  val eval : t -> x:float -> y:float -> float
end

val pchip : xs:float array -> ys:float array -> (float -> float)
(** Monotone cubic (Fritsch-Carlson) interpolant; preserves monotonicity of
    the data — important for I-V tables where overshoot would create
    spurious negative differential conductance. Clamps outside the domain. *)
