(** Least-squares model fitting.

    Used for the device-model calibration step: the paper fits
    I_read = b (V - V_t)^a to SPICE data; we perform the same fit against
    our circuit-simulated samples to verify the device model round-trips. *)

type linear_fit = { slope : float; intercept : float; r_squared : float }

val linear : xs:float array -> ys:float array -> linear_fit
(** Ordinary least squares y = slope * x + intercept. Requires >= 2 points. *)

val polynomial : degree:int -> xs:float array -> ys:float array -> float array
(** Coefficients c such that y ~ sum_i c.(i) x^i, lowest order first.
    Requires at least [degree+1] points. *)

val eval_polynomial : float array -> float -> float

type power_law_fit = { a : float; b : float; vt : float; rms_error : float }
(** Model I = b * (V - vt)^a, the paper's read-current form. *)

val power_law :
  ?vt_lo:float -> ?vt_hi:float -> float array -> float array -> power_law_fit
(** [power_law vs currents] fits by log-linear regression of
    ln I = ln b + a ln(V - vt), with a
    golden-section outer search over [vt] in [vt_lo, vt_hi] (defaults
    0 .. min(vs) - 1mV).  All currents must be positive and all [vs] must
    exceed the candidate [vt]. *)

val power_law_fixed_vt : vt:float -> vs:float array -> is_:float array -> power_law_fit
(** As {!power_law} with the threshold pinned. *)
