(** Sparse matrices in triplet (builder) and CSR (solver) form.

    MNA matrices of SRAM peripheral netlists (decoder trees, long bitlines
    discretized into RC ladders) are large and very sparse; this module
    provides the storage plus iterative solvers so those systems never
    densify. *)

module Builder : sig
  type t
  (** Accumulating triplet store; duplicate (i,j) entries sum, matching MNA
      stamping semantics. *)

  val create : n:int -> t
  (** Square [n] x [n] builder. *)

  val add : t -> int -> int -> float -> unit
  (** [add b i j x] stamps [x] into entry (i,j). *)

  val dim : t -> int
  val clear : t -> unit
end

type t
(** Compressed sparse row matrix. *)

val of_builder : Builder.t -> t
(** Compress, summing duplicates and dropping explicit zeros. *)

val dim : t -> int
val nnz : t -> int

val mat_vec : t -> float array -> float array

val get : t -> int -> int -> float
(** Entry lookup (binary search within the row); 0 where no entry stored. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** [iter a f] applies [f row col value] to every stored entry, row by
    row in column order. *)

val to_dense : t -> Matrix.t

val cg :
  ?tol:float -> ?max_iter:int -> t -> float array -> float array
(** Conjugate gradient for symmetric positive-definite systems (e.g. pure-RC
    networks).  [tol] is the relative residual target (default 1e-10).
    Returns the final iterate; convergence is checked by the caller via
    {!residual_norm} when in doubt. *)

val bicgstab :
  ?tol:float -> ?max_iter:int -> t -> float array -> float array
(** BiCGSTAB for general nonsymmetric systems (MNA with sources). *)

val residual_norm : t -> x:float array -> b:float array -> float
(** ||b - Ax||_2. *)
