module Builder = struct
  type t = {
    n : int;
    mutable is : int list;
    mutable js : int list;
    mutable xs : float list;
    mutable count : int;
  }

  let create ~n =
    assert (n > 0);
    { n; is = []; js = []; xs = []; count = 0 }

  let add b i j x =
    assert (i >= 0 && i < b.n && j >= 0 && j < b.n);
    if x <> 0.0 then begin
      b.is <- i :: b.is;
      b.js <- j :: b.js;
      b.xs <- x :: b.xs;
      b.count <- b.count + 1
    end

  let dim b = b.n

  let clear b =
    b.is <- [];
    b.js <- [];
    b.xs <- [];
    b.count <- 0
end

type t = {
  n : int;
  row_ptr : int array; (* length n+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array;
}

let of_builder (b : Builder.t) =
  let n = b.Builder.n in
  let is = Array.of_list b.Builder.is in
  let js = Array.of_list b.Builder.js in
  let xs = Array.of_list b.Builder.xs in
  let m = Array.length is in
  (* Sort triplets by (row, col) using an index permutation. *)
  let order = Array.init m (fun k -> k) in
  Array.sort
    (fun a b ->
      let c = compare is.(a) is.(b) in
      if c <> 0 then c else compare js.(a) js.(b))
    order;
  (* Merge duplicates. *)
  let merged_i = ref [] and merged_j = ref [] and merged_x = ref [] in
  let count = ref 0 in
  let k = ref 0 in
  while !k < m do
    let i = is.(order.(!k)) and j = js.(order.(!k)) in
    let acc = ref 0.0 in
    while !k < m && is.(order.(!k)) = i && js.(order.(!k)) = j do
      acc := !acc +. xs.(order.(!k));
      incr k
    done;
    if !acc <> 0.0 then begin
      merged_i := i :: !merged_i;
      merged_j := j :: !merged_j;
      merged_x := !acc :: !merged_x;
      incr count
    end
  done;
  let nnz = !count in
  let mi = Array.of_list (List.rev !merged_i) in
  let mj = Array.of_list (List.rev !merged_j) in
  let mx = Array.of_list (List.rev !merged_x) in
  let row_ptr = Array.make (n + 1) 0 in
  Array.iter (fun i -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) mi;
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  let cursor = Array.copy row_ptr in
  for k = 0 to nnz - 1 do
    let i = mi.(k) in
    col_idx.(cursor.(i)) <- mj.(k);
    values.(cursor.(i)) <- mx.(k);
    cursor.(i) <- cursor.(i) + 1
  done;
  { n; row_ptr; col_idx; values }

let dim a = a.n
let nnz a = Array.length a.values

let mat_vec a v =
  assert (Array.length v = a.n);
  Array.init a.n (fun i ->
      let acc = ref 0.0 in
      for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        acc := !acc +. (a.values.(k) *. v.(a.col_idx.(k)))
      done;
      !acc)

let get a i j =
  assert (i >= 0 && i < a.n && j >= 0 && j < a.n);
  let lo = ref a.row_ptr.(i) and hi = ref (a.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.col_idx.(mid) in
    if c = j then begin
      result := a.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let iter a f =
  for i = 0 to a.n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      f i a.col_idx.(k) a.values.(k)
    done
  done

let to_dense a =
  let m = Matrix.create ~rows:a.n ~cols:a.n in
  for i = 0 to a.n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Matrix.set m i a.col_idx.(k) a.values.(k)
    done
  done;
  m

let dot x y =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let axpy alpha x y =
  (* y <- y + alpha x *)
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let norm2 x = sqrt (dot x x)

let residual_norm a ~x ~b =
  let ax = mat_vec a x in
  let r = Array.mapi (fun i bi -> bi -. ax.(i)) b in
  norm2 r

let cg ?(tol = 1e-10) ?(max_iter = 2000) a b =
  let n = a.n in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let bnorm = max (norm2 b) 1e-300 in
  let rsold = ref (dot r r) in
  (try
     for _ = 1 to max_iter do
       if sqrt !rsold /. bnorm < tol then raise Exit;
       let ap = mat_vec a p in
       let alpha = !rsold /. dot p ap in
       axpy alpha p x;
       axpy (-.alpha) ap r;
       let rsnew = dot r r in
       let beta = rsnew /. !rsold in
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. p.(i))
       done;
       rsold := rsnew
     done
   with Exit -> ());
  x

let bicgstab ?(tol = 1e-10) ?(max_iter = 2000) a b =
  let n = a.n in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let r_hat = Array.copy b in
  let bnorm = max (norm2 b) 1e-300 in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Array.make n 0.0 and p = Array.make n 0.0 in
  (try
     for _ = 1 to max_iter do
       if norm2 r /. bnorm < tol then raise Exit;
       let rho_new = dot r_hat r in
       if abs_float rho_new < 1e-300 then raise Exit;
       let beta = rho_new /. !rho *. (!alpha /. !omega) in
       rho := rho_new;
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
       done;
       let v' = mat_vec a p in
       Array.blit v' 0 v 0 n;
       alpha := !rho /. dot r_hat v;
       let s = Array.init n (fun i -> r.(i) -. (!alpha *. v.(i))) in
       if norm2 s /. bnorm < tol then begin
         axpy !alpha p x;
         raise Exit
       end;
       let t = mat_vec a s in
       let tt = dot t t in
       omega := if tt < 1e-300 then 0.0 else dot t s /. tt;
       for i = 0 to n - 1 do
         x.(i) <- x.(i) +. (!alpha *. p.(i)) +. (!omega *. s.(i));
         r.(i) <- s.(i) -. (!omega *. t.(i))
       done;
       if abs_float !omega < 1e-300 then raise Exit
     done
   with Exit -> ());
  x
