type linear_fit = { slope : float; intercept : float; r_squared : float }

let linear ~xs ~ys =
  let n = Array.length xs in
  if n < 2 || Array.length ys <> n then invalid_arg "Fit.linear: need >= 2 matched points";
  let nf = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxy := !sxy +. (xs.(i) *. ys.(i))
  done;
  let denom = (nf *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-300 then invalid_arg "Fit.linear: degenerate abscissae";
  let slope = ((nf *. !sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_tot = Array.fold_left (fun a y -> a +. ((y -. mean_y) ** 2.0)) 0.0 ys in
  let ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let pred = (slope *. xs.(i)) +. intercept in
    ss_res := !ss_res +. ((ys.(i) -. pred) ** 2.0)
  done;
  let r_squared = if ss_tot < 1e-300 then 1.0 else 1.0 -. (!ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let polynomial ~degree ~xs ~ys =
  let n = Array.length xs in
  if degree < 0 then invalid_arg "Fit.polynomial: negative degree";
  if n < degree + 1 || Array.length ys <> n then
    invalid_arg "Fit.polynomial: need >= degree+1 matched points";
  let a = Matrix.create ~rows:n ~cols:(degree + 1) in
  for i = 0 to n - 1 do
    let p = ref 1.0 in
    for j = 0 to degree do
      Matrix.set a i j !p;
      p := !p *. xs.(i)
    done
  done;
  Lu.solve_least_squares a ys

let eval_polynomial coeffs x =
  (* Horner evaluation, coefficients lowest-order first. *)
  let acc = ref 0.0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

type power_law_fit = { a : float; b : float; vt : float; rms_error : float }

let power_law_fixed_vt ~vt ~vs ~is_ =
  let n = Array.length vs in
  if n < 2 || Array.length is_ <> n then
    invalid_arg "Fit.power_law_fixed_vt: need >= 2 matched points";
  Array.iteri
    (fun i v ->
      if v <= vt then invalid_arg "Fit.power_law_fixed_vt: v <= vt sample";
      if is_.(i) <= 0.0 then invalid_arg "Fit.power_law_fixed_vt: nonpositive current")
    vs;
  let lx = Array.map (fun v -> log (v -. vt)) vs in
  let ly = Array.map log is_ in
  let { slope; intercept; _ } = linear ~xs:lx ~ys:ly in
  let a = slope and b = exp intercept in
  let rms = ref 0.0 in
  for i = 0 to n - 1 do
    let pred = b *. ((vs.(i) -. vt) ** a) in
    let rel = (pred -. is_.(i)) /. is_.(i) in
    rms := !rms +. (rel *. rel)
  done;
  { a; b; vt; rms_error = sqrt (!rms /. float_of_int n) }

let power_law ?vt_lo ?vt_hi vs is_ =
  let vmin = Array.fold_left min infinity vs in
  let lo = Option.value vt_lo ~default:0.0 in
  let hi = Option.value vt_hi ~default:(vmin -. 1e-3) in
  if hi <= lo then invalid_arg "Fit.power_law: empty vt range";
  let objective vt = (power_law_fixed_vt ~vt ~vs ~is_).rms_error in
  let vt, _ = Roots.golden_min ~tol:1e-7 objective ~lo ~hi in
  power_law_fixed_vt ~vt ~vs ~is_
