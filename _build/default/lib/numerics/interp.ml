type extrapolation = Clamp | Extrapolate | Error

let check_increasing xs =
  for i = 0 to Array.length xs - 2 do
    if xs.(i) >= xs.(i + 1) then
      invalid_arg "Interp: abscissae must be strictly increasing"
  done

(* Index of the segment [xs.(i), xs.(i+1)] containing x (clamped). *)
let segment_index xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

module Table1d = struct
  type t = { xs : float array; ys : float array; extra : extrapolation }

  let create ?(extrapolation = Clamp) xs ys =
    if Array.length xs <> Array.length ys then
      invalid_arg "Table1d.create: length mismatch";
    if Array.length xs < 2 then invalid_arg "Table1d.create: need >= 2 points";
    check_increasing xs;
    { xs = Array.copy xs; ys = Array.copy ys; extra = extrapolation }

  let of_fn ?(extrapolation = Clamp) ~lo ~hi ~n f =
    if n < 2 then invalid_arg "Table1d.of_fn: need n >= 2";
    let xs =
      Array.init n (fun i ->
          lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))
    in
    let ys = Array.map f xs in
    create ~extrapolation xs ys

  let eval t x =
    let n = Array.length t.xs in
    let inside = x >= t.xs.(0) && x <= t.xs.(n - 1) in
    match t.extra with
    | Error when not inside ->
      invalid_arg
        (Printf.sprintf "Table1d.eval: %g outside [%g, %g]" x t.xs.(0) t.xs.(n - 1))
    | Clamp when x <= t.xs.(0) -> t.ys.(0)
    | Clamp when x >= t.xs.(n - 1) -> t.ys.(n - 1)
    | Clamp | Extrapolate | Error ->
      let i = segment_index t.xs x in
      let frac = (x -. t.xs.(i)) /. (t.xs.(i + 1) -. t.xs.(i)) in
      t.ys.(i) +. (frac *. (t.ys.(i + 1) -. t.ys.(i)))

  let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))
  let xs t = Array.copy t.xs
  let ys t = Array.copy t.ys
end

module Table2d = struct
  type t = {
    xs : float array;
    ys : float array;
    zs : float array array;
    extra : extrapolation;
  }

  let create ?(extrapolation = Clamp) ~xs ~ys zs =
    if Array.length zs <> Array.length xs then
      invalid_arg "Table2d.create: zs rows must match xs";
    Array.iter
      (fun row ->
        if Array.length row <> Array.length ys then
          invalid_arg "Table2d.create: zs cols must match ys")
      zs;
    if Array.length xs < 2 || Array.length ys < 2 then
      invalid_arg "Table2d.create: need >= 2 points per axis";
    check_increasing xs;
    check_increasing ys;
    { xs = Array.copy xs; ys = Array.copy ys; zs = Array.map Array.copy zs;
      extra = extrapolation }

  let clamp01 extra v = match extra with
    | Clamp | Error -> max 0.0 (min 1.0 v)
    | Extrapolate -> v

  let eval t ~x ~y =
    let nx = Array.length t.xs and ny = Array.length t.ys in
    let inside =
      x >= t.xs.(0) && x <= t.xs.(nx - 1) && y >= t.ys.(0) && y <= t.ys.(ny - 1)
    in
    if t.extra = Error && not inside then
      invalid_arg "Table2d.eval: point outside domain";
    let i = segment_index t.xs x and j = segment_index t.ys y in
    let fx =
      clamp01 t.extra ((x -. t.xs.(i)) /. (t.xs.(i + 1) -. t.xs.(i)))
    and fy =
      clamp01 t.extra ((y -. t.ys.(j)) /. (t.ys.(j + 1) -. t.ys.(j)))
    in
    let z00 = t.zs.(i).(j) and z10 = t.zs.(i + 1).(j) in
    let z01 = t.zs.(i).(j + 1) and z11 = t.zs.(i + 1).(j + 1) in
    (z00 *. (1.0 -. fx) *. (1.0 -. fy))
    +. (z10 *. fx *. (1.0 -. fy))
    +. (z01 *. (1.0 -. fx) *. fy)
    +. (z11 *. fx *. fy)
end

(* Fritsch-Carlson monotone cubic interpolation. *)
let pchip ~xs ~ys =
  if Array.length xs <> Array.length ys then invalid_arg "pchip: length mismatch";
  let n = Array.length xs in
  if n < 2 then invalid_arg "pchip: need >= 2 points";
  check_increasing xs;
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let m = Array.make n 0.0 in
  m.(0) <- delta.(0);
  m.(n - 1) <- delta.(n - 2);
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) <= 0.0 then m.(i) <- 0.0
    else begin
      let w1 = (2.0 *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2.0 *. h.(i - 1)) in
      m.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
  done;
  fun x ->
    let x = max xs.(0) (min xs.(n - 1) x) in
    let i = segment_index xs x in
    let t = (x -. xs.(i)) /. h.(i) in
    let t2 = t *. t and t3 = t *. t *. t in
    let h00 = (2.0 *. t3) -. (3.0 *. t2) +. 1.0 in
    let h10 = t3 -. (2.0 *. t2) +. t in
    let h01 = (-2.0 *. t3) +. (3.0 *. t2) in
    let h11 = t3 -. t2 in
    (h00 *. ys.(i))
    +. (h10 *. h.(i) *. m.(i))
    +. (h01 *. ys.(i + 1))
    +. (h11 *. h.(i) *. m.(i + 1))
