(** Dense LU factorization with partial pivoting, the workhorse behind the
    MNA DC solver and least-squares fits. *)

exception Singular
(** Raised when the matrix is numerically singular (pivot below threshold). *)

type factors
(** An LU factorization of a square matrix (with row-permutation record). *)

val factorize : Matrix.t -> factors
(** @raise Singular on rank-deficient input.  Does not mutate the input. *)

val solve_factored : factors -> float array -> float array
(** Back-substitution against an existing factorization. *)

val solve : Matrix.t -> float array -> float array
(** One-shot [factorize] + [solve_factored]. *)

val det : factors -> float
(** Determinant from the factorization. *)

val solve_least_squares : Matrix.t -> float array -> float array
(** Minimum-norm solution of an overdetermined system via normal equations
    (A^T A x = A^T b).  Adequate for the small, well-conditioned fits used
    here (power-law current fits, polynomial delay fits). *)
