(** Sparse LU factorization with partial pivoting.

    Circuit (MNA) matrices grow with the netlist while staying very
    sparse; dense LU turns a 500-node array netlist into minutes of
    arithmetic.  This factorization keeps rows as sparse vectors, pivots
    by magnitude, and accepts fill-in — no reordering heuristics, which is
    adequate for the banded-ish structure circuit node numbering
    produces (the test suite includes a 1000-node ladder).

    Shares {!Lu.Singular} for rank-deficient inputs. *)

type factors

val factorize : Sparse.t -> factors
(** @raise Lu.Singular when no acceptable pivot exists. *)

val solve_factored : factors -> float array -> float array

val solve : Sparse.t -> float array -> float array
(** One-shot [factorize] + [solve_factored]. *)

val nnz_factors : factors -> int
(** Stored entries in L + U (fill-in diagnostics). *)
