type result = {
  x : float array;
  converged : bool;
  iterations : int;
  residual : float;
}

let norm_inf v = Array.fold_left (fun acc x -> max acc (abs_float x)) 0.0 v

let solve_linear_regularized jac rhs =
  (* Try a plain LU solve; on singularity, add an increasing diagonal
     conductance (gmin stepping) until the system factors. *)
  let n = Array.length rhs in
  let rec attempt gmin =
    let m = Matrix.copy jac in
    if gmin > 0.0 then
      for i = 0 to n - 1 do
        Matrix.add_to m i i gmin
      done;
    match Lu.solve m rhs with
    | x -> x
    | exception Lu.Singular ->
      if gmin > 1.0 then Array.make n 0.0 else attempt (if gmin = 0.0 then 1e-12 else gmin *. 100.0)
  in
  attempt 0.0

let solve_custom ?(tol = 1e-12) ?(max_iter = 200) ?(damping = 1.0)
    ?(max_step = 0.12) ~residual ~solve_step ~x0 () =
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let rec iterate iter fnorm =
    if fnorm < tol then { x; converged = true; iterations = iter; residual = fnorm }
    else if iter >= max_iter then
      { x; converged = false; iterations = iter; residual = fnorm }
    else begin
      let f = residual x in
      let neg_f = Array.map (fun v -> -.v) f in
      let dx = solve_step x neg_f in
      (* Clamp each component to the trust region. *)
      for i = 0 to n - 1 do
        if dx.(i) > max_step then dx.(i) <- max_step
        else if dx.(i) < -.max_step then dx.(i) <- -.max_step
      done;
      (* Backtracking line search on the residual norm. *)
      let base = Array.copy x in
      let rec backtrack scale tries =
        for i = 0 to n - 1 do
          x.(i) <- base.(i) +. (scale *. damping *. dx.(i))
        done;
        let fnew = norm_inf (residual x) in
        if fnew < fnorm || tries >= 8 then fnew
        else backtrack (scale *. 0.5) (tries + 1)
      in
      let fnew = backtrack 1.0 0 in
      iterate (iter + 1) fnew
    end
  in
  iterate 0 (norm_inf (residual x))

let solve ?tol ?max_iter ?damping ?max_step ~residual ~jacobian ~x0 () =
  let solve_step x neg_f = solve_linear_regularized (jacobian x) neg_f in
  solve_custom ?tol ?max_iter ?damping ?max_step ~residual ~solve_step ~x0 ()

let solve_fd ?(tol = 1e-12) ?(max_iter = 200) ?(damping = 1.0) ?(max_step = 0.12)
    ?(eps = 1e-7) ~residual ~x0 () =
  let n = Array.length x0 in
  let jacobian x =
    let f0 = residual x in
    let jac = Matrix.create ~rows:n ~cols:n in
    let xp = Array.copy x in
    for j = 0 to n - 1 do
      let h = eps *. max 1.0 (abs_float x.(j)) in
      xp.(j) <- x.(j) +. h;
      let fj = residual xp in
      xp.(j) <- x.(j);
      for i = 0 to n - 1 do
        Matrix.set jac i j ((fj.(i) -. f0.(i)) /. h)
      done
    done;
    jac
  in
  solve ~tol ~max_iter ~damping ~max_step ~residual ~jacobian ~x0 ()
