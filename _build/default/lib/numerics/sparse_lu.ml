(* Row-wise sparse Gaussian elimination with partial pivoting.

   Working representation: each active row is a hashtable column -> value
   (mutation-heavy elimination wants O(1) access); finished U rows and the
   L multipliers are frozen into sorted arrays.  Multipliers are recorded
   against row identities, so pivot swaps in later steps need no fix-up. *)

type factors = {
  n : int;
  u_cols : int array array;   (* per step k: U columns >= k, sorted, diag first *)
  u_vals : float array array;
  l_rows : int array array;   (* per step k: the row ids that were updated *)
  l_vals : float array array;
  perm : int array;           (* perm.(k) = row id chosen as pivot at step k *)
}

let pivot_threshold = 1e-14

let factorize (a : Sparse.t) =
  let n = Sparse.dim a in
  let rows = Array.init n (fun _ -> Hashtbl.create 8) in
  Sparse.iter a (fun i j v -> if v <> 0.0 then Hashtbl.replace rows.(i) j v);
  let eliminated = Array.make n false in
  let perm = Array.make n 0 in
  let u_cols = Array.make n [||] in
  let u_vals = Array.make n [||] in
  let l_rows = Array.make n [||] in
  let l_vals = Array.make n [||] in
  for k = 0 to n - 1 do
    (* Pivot: the remaining row with the largest |entry| in column k. *)
    let best_row = ref (-1) in
    let best_mag = ref pivot_threshold in
    for r = 0 to n - 1 do
      if not eliminated.(r) then
        match Hashtbl.find_opt rows.(r) k with
        | Some v when abs_float v > !best_mag ->
          best_mag := abs_float v;
          best_row := r
        | Some _ | None -> ()
    done;
    if !best_row < 0 then raise Lu.Singular;
    let pr = !best_row in
    eliminated.(pr) <- true;
    perm.(k) <- pr;
    let pivot_row = rows.(pr) in
    let pivot = Hashtbl.find pivot_row k in
    (* Freeze the U row (columns >= k; earlier columns were eliminated). *)
    let entries =
      List.sort
        (fun (j1, _) (j2, _) -> compare j1 j2)
        (Hashtbl.fold (fun j v acc -> (j, v) :: acc) pivot_row [])
    in
    u_cols.(k) <- Array.of_list (List.map fst entries);
    u_vals.(k) <- Array.of_list (List.map snd entries);
    (* Eliminate column k from every remaining row. *)
    let multipliers = ref [] in
    for r = 0 to n - 1 do
      if not eliminated.(r) then
        match Hashtbl.find_opt rows.(r) k with
        | None -> ()
        | Some v ->
          let m = v /. pivot in
          Hashtbl.remove rows.(r) k;
          if m <> 0.0 then begin
            multipliers := (r, m) :: !multipliers;
            List.iter
              (fun (j, uv) ->
                if j > k then begin
                  let updated =
                    (match Hashtbl.find_opt rows.(r) j with
                     | Some x -> x
                     | None -> 0.0)
                    -. (m *. uv)
                  in
                  if updated = 0.0 then Hashtbl.remove rows.(r) j
                  else Hashtbl.replace rows.(r) j updated
                end)
              entries
          end
    done;
    let ms = List.sort (fun (r1, _) (r2, _) -> compare r1 r2) !multipliers in
    l_rows.(k) <- Array.of_list (List.map fst ms);
    l_vals.(k) <- Array.of_list (List.map snd ms)
  done;
  { n; u_cols; u_vals; l_rows; l_vals; perm }

let solve_factored f b =
  let n = f.n in
  assert (Array.length b = n);
  (* Forward elimination replayed on a row-id-indexed copy of b. *)
  let y = Array.copy b in
  for k = 0 to n - 1 do
    let pivot_value = y.(f.perm.(k)) in
    let rowsk = f.l_rows.(k) and valsk = f.l_vals.(k) in
    for idx = 0 to Array.length rowsk - 1 do
      y.(rowsk.(idx)) <- y.(rowsk.(idx)) -. (valsk.(idx) *. pivot_value)
    done
  done;
  (* Back substitution over the pivot order. *)
  let x = Array.make n 0.0 in
  for k = n - 1 downto 0 do
    let cols = f.u_cols.(k) and vals = f.u_vals.(k) in
    let acc = ref y.(f.perm.(k)) in
    for idx = 1 to Array.length cols - 1 do
      acc := !acc -. (vals.(idx) *. x.(cols.(idx)))
    done;
    x.(k) <- !acc /. vals.(0)
  done;
  x

let solve a b = solve_factored (factorize a) b

let nnz_factors f =
  let total = ref 0 in
  Array.iter (fun row -> total := !total + Array.length row) f.u_cols;
  Array.iter (fun row -> total := !total + Array.length row) f.l_rows;
  !total
