(** Damped Newton-Raphson for small nonlinear systems F(x) = 0.

    This is the kernel of the DC operating-point solver: the residual is the
    vector of KCL node-current sums and the Jacobian is the MNA conductance
    matrix linearized at the current iterate. *)

type result = {
  x : float array;        (** final iterate *)
  converged : bool;       (** residual below tolerance *)
  iterations : int;       (** Newton steps taken *)
  residual : float;       (** final ||F(x)||_inf *)
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  ?max_step:float ->
  residual:(float array -> float array) ->
  jacobian:(float array -> Matrix.t) ->
  x0:float array ->
  unit ->
  result
(** [solve ~residual ~jacobian ~x0 ()] iterates
    [x <- x - damp * J^-1 F(x)] with:
    - per-component step clamping to [max_step] (default 0.12, roughly a
      thermal-voltage-scale trust region appropriate for exponential device
      models);
    - backtracking line search halving the step while the residual norm
      does not decrease (up to 8 halvings);
    - singular-Jacobian recovery by gmin-style diagonal regularization.

    [tol] bounds ||F||_inf (default 1e-12, i.e. picoampere-scale KCL error).
    Not raising on failure is deliberate: continuation strategies
    (source stepping) inspect [converged] and retry. *)

val solve_fd :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  ?max_step:float ->
  ?eps:float ->
  residual:(float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** As {!solve} with a forward-difference Jacobian ([eps] default 1e-7). *)

val solve_custom :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  ?max_step:float ->
  residual:(float array -> float array) ->
  solve_step:(float array -> float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** As {!solve} with the Newton step delegated to
    [solve_step x neg_f = J(x)^-1 neg_f] — the hook large circuits use to
    plug in {!Sparse_lu} instead of dense factorization.  [solve_step]
    owns singularity recovery (e.g. gmin regularization). *)
