let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs ~p =
  assert (Array.length xs > 0);
  assert (p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let geometric_mean xs =
  assert (Array.length xs > 0);
  let acc = Array.fold_left (fun a x -> assert (x > 0.0); a +. log x) 0.0 xs in
  exp (acc /. float_of_int (Array.length xs))

let mu_minus_k_sigma xs ~k = mean xs -. (k *. stddev xs)

(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = abs_float x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
        +. (t *. (-0.284496736
                  +. (t *. (1.421413741
                            +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  assert (sigma > 0.0);
  0.5 *. (1.0 +. erf ((x -. mu) /. (sigma *. sqrt 2.0)))

(* Stirling-series log-gamma (Lanczos would also do; this is plenty for
   binomials over integer arguments). *)
let rec log_gamma x =
  assert (x > 0.0);
  if x < 7.0 then log_gamma (x +. 1.0) -. log x
  else begin
    let inv = 1.0 /. x in
    let inv2 = inv *. inv in
    ((x -. 0.5) *. log x) -. x
    +. (0.5 *. log (2.0 *. Float.pi))
    +. (inv /. 12.0)
    -. (inv *. inv2 /. 360.0)
    +. (inv *. inv2 *. inv2 /. 1260.0)
  end

let log_choose n k =
  assert (n >= 0 && k >= 0 && k <= n);
  if k = 0 || k = n then 0.0
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let binomial_cdf ~n ~p k =
  assert (n >= 0 && p >= 0.0 && p <= 1.0);
  if k < 0 then 0.0
  else if k >= n then 1.0
  else if p = 0.0 then 1.0
  else if p = 1.0 then 0.0
  else begin
    let log_p = log p and log_q = log (1.0 -. p) in
    let acc = ref 0.0 in
    for i = 0 to k do
      let term =
        log_choose n i
        +. (float_of_int i *. log_p)
        +. (float_of_int (n - i) *. log_q)
      in
      acc := !acc +. exp term
    done;
    min 1.0 !acc
  end
