(** Small dense matrices (row-major float arrays) for MNA Jacobians and
    least-squares normal equations.  Circuit matrices here are tiny (a 6T
    cell has 2-4 unknown nodes), so dense storage is the right tool; the
    sparse path ({!Sparse}) exists for larger array-level systems. *)

type t
(** A dense [rows] x [cols] matrix. *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows. Requires equal row lengths. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] performs [m.(i).(j) <- m.(i).(j) +. x] — the MNA
    "stamp" primitive. *)

val copy : t -> t
val fill : t -> float -> unit

val mat_vec : t -> float array -> float array
(** Matrix-vector product. *)

val transpose : t -> t
val mat_mul : t -> t -> t

val to_arrays : t -> float array array
(** Fresh row-array copy (for display / tests). *)

val pp : Format.formatter -> t -> unit
