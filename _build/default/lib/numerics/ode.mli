(** Initial-value ODE integration for transient circuit analysis.

    The transient solver integrates C dv/dt = f(t, v) (nodal charge
    conservation).  Backward Euler is the default — unconditionally stable,
    which matters for the stiff systems produced by strong transistors
    driving small node capacitances.  RK4 is provided for smooth, non-stiff
    verification cases. *)

type event = {
  time : float;
  state : float array;
}

val rk4 :
  f:(float -> float array -> float array) ->
  t0:float -> t1:float -> dt:float -> float array -> event list
(** [rk4 ~f ~t0 ~t1 ~dt y0]: classic fixed-step Runge-Kutta 4. Returns
    states at every step, in increasing time order, including both
    endpoints. *)

val backward_euler :
  ?newton_tol:float ->
  f:(float -> float array -> float array) ->
  t0:float -> t1:float -> dt:float -> float array -> event list
(** [backward_euler ~f ~t0 ~t1 ~dt y0]: implicit Euler; each step solves
    y_{n+1} = y_n + dt f(t_{n+1}, y_{n+1}) with a finite-difference damped
    Newton iteration. *)

val first_crossing :
  events:event list -> index:int -> threshold:float -> direction:[ `Rising | `Falling ] ->
  float option
(** Linear-interpolated time at which component [index] first crosses
    [threshold] in the requested direction, if it does.  This implements
    delay measurement (e.g. "time until BL falls to Vdd - ΔV_S"). *)
