exception No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo in
  let fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then raise No_bracket
  else begin
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter >= max_iter then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then loop lo mid flo (iter + 1)
        else loop mid hi fmid (iter + 1)
      end
    in
    loop lo hi flo 0
  end

(* Brent's method, following the classic Numerical Recipes formulation. *)
let brent ?(tol = 1e-12) ?(max_iter = 100) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if !fa = 0.0 then lo
  else if !fb = 0.0 then hi
  else if !fa *. !fb > 0.0 then raise No_bracket
  else begin
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
           c := !a; fc := !fa; d := !b -. !a; e := !d
         end;
         if abs_float !fc < abs_float !fb then begin
           a := !b; b := !c; c := !a;
           fa := !fb; fb := !fc; fc := !fa
         end;
         let tol1 = (2.0 *. epsilon_float *. abs_float !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if abs_float xm <= tol1 || !fb = 0.0 then begin
           result := !b;
           raise Exit
         end;
         if abs_float !e >= tol1 && abs_float !fa > abs_float !fb then begin
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then begin
               let p = 2.0 *. xm *. s in
               let q = 1.0 -. s in
               (p, q)
             end else begin
               let q = !fa /. !fc in
               let r = !fb /. !fc in
               let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
               let q = (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) in
               (p, q)
             end
           in
           let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
           let min1 = (3.0 *. xm *. q) -. abs_float (tol1 *. q) in
           let min2 = abs_float (!e *. q) in
           if 2.0 *. p < min min1 min2 then begin
             e := !d; d := p /. q
           end else begin
             d := xm; e := !d
           end
         end else begin
           d := xm; e := !d
         end;
         a := !b; fa := !fb;
         if abs_float !d > tol1 then b := !b +. !d
         else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
         fb := f !b
       done;
       result := !b
     with Exit -> ());
    !result
  end

let newton_scalar ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x iter =
    if iter >= max_iter then x
    else begin
      let fx = f x in
      let dfx = df x in
      if abs_float fx < tol then x
      else begin
        let step =
          if abs_float dfx < 1e-300 then (if fx > 0.0 then -1e-6 else 1e-6)
          else -.fx /. dfx
        in
        loop (x +. step) (iter + 1)
      end
    end
  in
  loop x0 0

let golden_min ?(tol = 1e-10) f ~lo ~hi =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec loop a b c d fc fd =
    if b -. a < tol then begin
      let x = 0.5 *. (a +. b) in
      (x, f x)
    end
    else if fc < fd then begin
      let b' = d in
      let d' = c in
      let c' = b' -. (phi *. (b' -. a)) in
      loop a b' c' d' (f c') fc
    end else begin
      let a' = c in
      let c' = d in
      let d' = a' +. (phi *. (b -. a')) in
      loop a' b c' d' fd (f d')
    end
  in
  let c = hi -. (phi *. (hi -. lo)) in
  let d = lo +. (phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d)

let find_bracket f ~lo ~hi ~n =
  assert (n > 0);
  let step = (hi -. lo) /. float_of_int n in
  let rec scan i prev_x prev_f =
    if i > n then None
    else begin
      let x = lo +. (float_of_int i *. step) in
      let fx = f x in
      if prev_f *. fx <= 0.0 then Some (prev_x, x) else scan (i + 1) x fx
    end
  in
  scan 1 lo (f lo)
