lib/numerics/stats.mli:
