lib/numerics/sparse_lu.mli: Sparse
