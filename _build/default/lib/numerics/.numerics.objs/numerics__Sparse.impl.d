lib/numerics/sparse.ml: Array List Matrix
