lib/numerics/interp.mli:
