lib/numerics/sparse_lu.ml: Array Hashtbl List Lu Sparse
