lib/numerics/interp.ml: Array Printf
