lib/numerics/roots.ml:
