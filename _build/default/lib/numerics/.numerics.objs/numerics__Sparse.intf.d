lib/numerics/sparse.mli: Matrix
