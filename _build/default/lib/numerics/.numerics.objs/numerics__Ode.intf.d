lib/numerics/ode.mli:
