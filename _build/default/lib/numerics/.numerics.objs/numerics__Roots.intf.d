lib/numerics/roots.mli:
