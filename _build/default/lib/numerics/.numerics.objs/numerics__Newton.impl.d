lib/numerics/newton.ml: Array Lu Matrix
