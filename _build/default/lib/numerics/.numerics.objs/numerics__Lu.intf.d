lib/numerics/lu.mli: Matrix
