lib/numerics/ode.ml: Array List Newton
