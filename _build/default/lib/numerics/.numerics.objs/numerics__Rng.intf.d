lib/numerics/rng.mli:
