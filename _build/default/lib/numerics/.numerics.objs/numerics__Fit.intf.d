lib/numerics/fit.mli:
