lib/numerics/rng.ml: Float Int64
