lib/numerics/lu.ml: Array Matrix
