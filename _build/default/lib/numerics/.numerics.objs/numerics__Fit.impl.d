lib/numerics/fit.ml: Array Lu Matrix Option Roots
