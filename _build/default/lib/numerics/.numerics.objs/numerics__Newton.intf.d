lib/numerics/newton.mli: Matrix
