type event = { time : float; state : float array }

let rk4 ~f ~t0 ~t1 ~dt y0 =
  assert (dt > 0.0 && t1 > t0);
  let n = Array.length y0 in
  let steps = int_of_float (ceil ((t1 -. t0) /. dt)) in
  let y = ref (Array.copy y0) in
  let t = ref t0 in
  let acc = ref [ { time = t0; state = Array.copy y0 } ] in
  for _ = 1 to steps do
    let h = min dt (t1 -. !t) in
    if h > 0.0 then begin
      let yv = !y in
      let k1 = f !t yv in
      let mid1 = Array.init n (fun i -> yv.(i) +. (0.5 *. h *. k1.(i))) in
      let k2 = f (!t +. (0.5 *. h)) mid1 in
      let mid2 = Array.init n (fun i -> yv.(i) +. (0.5 *. h *. k2.(i))) in
      let k3 = f (!t +. (0.5 *. h)) mid2 in
      let endp = Array.init n (fun i -> yv.(i) +. (h *. k3.(i))) in
      let k4 = f (!t +. h) endp in
      let ynew =
        Array.init n (fun i ->
            yv.(i)
            +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
      in
      t := !t +. h;
      y := ynew;
      acc := { time = !t; state = Array.copy ynew } :: !acc
    end
  done;
  List.rev !acc

let backward_euler ?(newton_tol = 1e-10) ~f ~t0 ~t1 ~dt y0 =
  assert (dt > 0.0 && t1 > t0);
  let steps = int_of_float (ceil ((t1 -. t0) /. dt)) in
  let y = ref (Array.copy y0) in
  let t = ref t0 in
  let acc = ref [ { time = t0; state = Array.copy y0 } ] in
  for _ = 1 to steps do
    let h = min dt (t1 -. !t) in
    if h > 0.0 then begin
      let yn = !y in
      let tn1 = !t +. h in
      (* Residual of the implicit step: g(y) = y - yn - h f(tn1, y). *)
      let residual ynext =
        let fy = f tn1 ynext in
        Array.init (Array.length yn) (fun i -> ynext.(i) -. yn.(i) -. (h *. fy.(i)))
      in
      let result =
        Newton.solve_fd ~tol:newton_tol ~max_iter:60 ~max_step:0.2 ~residual
          ~x0:(Array.copy yn) ()
      in
      t := tn1;
      y := result.Newton.x;
      acc := { time = !t; state = Array.copy result.Newton.x } :: !acc
    end
  done;
  List.rev !acc

let first_crossing ~events ~index ~threshold ~direction =
  let crosses prev cur =
    match direction with
    | `Rising -> prev < threshold && cur >= threshold
    | `Falling -> prev > threshold && cur <= threshold
  in
  let rec scan = function
    | a :: (b :: _ as rest) ->
      let va = a.state.(index) and vb = b.state.(index) in
      if crosses va vb then begin
        let frac = if vb = va then 0.0 else (threshold -. va) /. (vb -. va) in
        Some (a.time +. (frac *. (b.time -. a.time)))
      end
      else scan rest
    | [ _ ] | [] -> None
  in
  scan events
