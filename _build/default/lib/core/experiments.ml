let default_vdds = [| 0.100; 0.150; 0.200; 0.250; 0.300; 0.350; 0.400; 0.450 |]

let cell_of flavor =
  let lib = Lazy.force Finfet.Library.default in
  Finfet.Variation.nominal_cell
    ~nfet:(Finfet.Library.nfet lib flavor)
    ~pfet:(Finfet.Library.pfet lib flavor)

(* --- Figure 2 --- *)

type voltage_point = {
  vdd : float;
  lvt : float;
  hvt : float;
}

let fig2a_hsnm ?(vdds = default_vdds) () =
  let lvt_cell = cell_of Finfet.Library.Lvt in
  let hvt_cell = cell_of Finfet.Library.Hvt in
  Array.map
    (fun vdd ->
      { vdd;
        lvt = Sram_cell.Margins.hold_snm ~cell:lvt_cell vdd;
        hvt = Sram_cell.Margins.hold_snm ~cell:hvt_cell vdd })
    vdds

let fig2b_leakage ?(vdds = default_vdds) () =
  let lvt_cell = cell_of Finfet.Library.Lvt in
  let hvt_cell = cell_of Finfet.Library.Hvt in
  Array.map
    (fun vdd ->
      { vdd;
        lvt = Sram_cell.Leakage.power ~vdd ~cell:lvt_cell ();
        hvt = Sram_cell.Leakage.power ~vdd ~cell:hvt_cell () })
    vdds

let print_fig2 () =
  let hsnm = fig2a_hsnm () in
  let leak = fig2b_leakage () in
  let table =
    Report.create
      ~columns:
        [ "Vdd"; "HSNM LVT"; "HSNM HVT"; "HSNM/Vdd LVT"; "HSNM/Vdd HVT";
          "P_leak LVT"; "P_leak HVT" ]
  in
  Array.iteri
    (fun i h ->
      let l = leak.(i) in
      Report.add_row table
        [ Units.mv h.vdd; Units.mv h.lvt; Units.mv h.hvt;
          Printf.sprintf "%.0f%%" (100.0 *. h.lvt /. h.vdd);
          Printf.sprintf "%.0f%%" (100.0 *. h.hvt /. h.vdd);
          Units.nw l.lvt; Units.nw l.hvt ])
    hsnm;
  Report.print ~title:"Figure 2: HSNM and leakage power vs Vdd" table;
  let nominal = leak.(Array.length leak - 1) in
  Printf.printf
    "Anchors: paper P_leak(450mV) = 1.692 nW (LVT) / 0.082 nW (HVT); measured %s / %s (ratio %.1fx, paper 20.6x)\n"
    (Units.nw nominal.lvt) (Units.nw nominal.hvt) (nominal.lvt /. nominal.hvt);
  print_newline ();
  Ascii_plot.print ~log_y:true ~x_label:"Vdd (mV)" ~y_label:"P_leak (W)"
    [ { Ascii_plot.label = "6T-LVT"; marker = 'L';
        points = Array.to_list (Array.map (fun p -> (p.vdd *. 1e3, p.lvt)) leak) };
      { Ascii_plot.label = "6T-HVT"; marker = 'H';
        points = Array.to_list (Array.map (fun p -> (p.vdd *. 1e3, p.hvt)) leak) } ]

(* --- Figure 3(a) --- *)

type fig3a = {
  rsnm_lvt : float;
  rsnm_hvt : float;
  iread_lvt : float;
  iread_hvt : float;
}

let fig3a () =
  let lib = Lazy.force Finfet.Library.default in
  let read = Sram_cell.Sram6t.read () in
  let vdd = Finfet.Tech.vdd_nominal in
  { rsnm_lvt = Sram_cell.Margins.read_snm ~cell:(cell_of Finfet.Library.Lvt) read;
    rsnm_hvt = Sram_cell.Margins.read_snm ~cell:(cell_of Finfet.Library.Hvt) read;
    iread_lvt = Finfet.Library.i_read lib Finfet.Library.Lvt ~vddc:vdd ~vssc:0.0;
    iread_hvt = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:vdd ~vssc:0.0 }

let print_fig3a () =
  let r = fig3a () in
  let table =
    Report.create ~columns:[ "metric"; "6T-LVT"; "6T-HVT"; "HVT/LVT"; "paper HVT/LVT" ]
  in
  Report.add_row table
    [ "RSNM"; Units.mv r.rsnm_lvt; Units.mv r.rsnm_hvt;
      Printf.sprintf "%.2fx" (r.rsnm_hvt /. r.rsnm_lvt); "1.9x" ];
  Report.add_row table
    [ "I_read"; Units.ua r.iread_lvt; Units.ua r.iread_hvt;
      Printf.sprintf "%.2fx" (r.iread_hvt /. r.iread_lvt); "~0.5x" ];
  Report.print
    ~title:"Figure 3(a): RSNM and read current, no assist, nominal Vdd" table

(* --- Figures 3(b)-(d) --- *)

type read_assist_sweep = {
  technique : Assist.Technique.read_assist;
  points : Assist.Sweep.read_point array;
  yield_crossing : float option;
  lvt_delay_crossing : float option;
}

let lvt_reference_bl_delay () =
  let lib = Lazy.force Finfet.Library.default in
  let i =
    Finfet.Library.i_read lib Finfet.Library.Lvt
      ~vddc:Finfet.Tech.vdd_nominal ~vssc:0.0
  in
  Assist.Sweep.bl_delay_of_current ~flavor:Finfet.Library.Lvt i

let fig3_read_assist technique =
  let voltages = Assist.Technique.default_read_range technique in
  let points =
    Assist.Sweep.read_sweep ~flavor:Finfet.Library.Hvt ~technique ~voltages ()
  in
  let rsnm_points =
    Array.map
      (fun (p : Assist.Sweep.read_point) ->
        (p.Assist.Sweep.voltage, p.Assist.Sweep.rsnm))
      points
  in
  let delay_points =
    Array.map
      (fun (p : Assist.Sweep.read_point) ->
        (p.Assist.Sweep.voltage, p.Assist.Sweep.bl_delay))
      points
  in
  { technique;
    points;
    yield_crossing =
      Assist.Sweep.crossing_voltage ~points:rsnm_points
        ~threshold:Finfet.Tech.min_margin;
    lvt_delay_crossing =
      Assist.Sweep.crossing_voltage ~points:delay_points
        ~threshold:(lvt_reference_bl_delay ()) }

let print_fig3bcd () =
  let reference = lvt_reference_bl_delay () in
  Printf.printf
    "\nReference: unassisted 6T-LVT BL delay (64-cell column) = %s; RSNM requirement = %s\n"
    (Units.ps reference) (Units.mv Finfet.Tech.min_margin);
  List.iter
    (fun (label, technique, paper_note) ->
      let sweep = fig3_read_assist technique in
      let table =
        Report.create ~columns:[ "voltage"; "RSNM"; "I_read"; "BL delay (64 rows)" ]
      in
      Array.iter
        (fun (p : Assist.Sweep.read_point) ->
          Report.add_row table
            [ Units.mv p.Assist.Sweep.voltage;
              Units.mv p.Assist.Sweep.rsnm;
              Units.ua p.Assist.Sweep.read_current;
              Units.ps p.Assist.Sweep.bl_delay ])
        sweep.points;
      Report.print
        ~title:
          (Printf.sprintf "Figure 3(%s): %s on 6T-HVT" label
             (Assist.Technique.read_assist_name technique))
        table;
      (match sweep.yield_crossing with
       | Some v ->
         Printf.printf "RSNM meets the yield rule at %s (%s)\n" (Units.mv v)
           paper_note
       | None -> Printf.printf "RSNM does not cross the yield rule in range (%s)\n" paper_note);
      match sweep.lvt_delay_crossing with
      | Some v ->
        Printf.printf "BL delay matches unassisted LVT at %s\n" (Units.mv v)
      | None -> ())
    [ ("b", Assist.Technique.Vdd_boost, "paper: V_DDC = 550 mV");
      ("c", Assist.Technique.Negative_gnd, "paper: RSNM already aided by boost; V_SSC = -100 mV matches LVT delay");
      ("d", Assist.Technique.Wl_underdrive, "paper: V_WL = 300 mV") ];
  let gnd = fig3_read_assist Assist.Technique.Negative_gnd in
  print_newline ();
  Ascii_plot.print ~x_label:"V_SSC (mV)" ~y_label:"64-row BL delay (ps)"
    [ { Ascii_plot.label = "6T-HVT BL delay under negative Gnd"; marker = '*';
        points =
          Array.to_list
            (Array.map
               (fun (p : Assist.Sweep.read_point) ->
                 (p.Assist.Sweep.voltage *. 1e3, p.Assist.Sweep.bl_delay *. 1e12))
               gnd.points) };
      { Ascii_plot.label = "unassisted 6T-LVT reference"; marker = '-';
        points =
          [ (-240.0, reference *. 1e12); (0.0, reference *. 1e12) ] } ]

(* --- Figure 5 --- *)

type write_assist_sweep = {
  technique : Assist.Technique.write_assist;
  points : Assist.Sweep.write_point array;
  wm_yield_crossing : float option;
}

let fig5_write_assist technique =
  let voltages = Assist.Technique.default_write_range technique in
  let points =
    Assist.Sweep.write_sweep ~flavor:Finfet.Library.Hvt ~technique ~voltages ()
  in
  let wm_points =
    Array.map
      (fun (p : Assist.Sweep.write_point) ->
        (p.Assist.Sweep.voltage, p.Assist.Sweep.wm))
      points
  in
  { technique;
    points;
    wm_yield_crossing =
      Assist.Sweep.crossing_voltage ~points:wm_points
        ~threshold:Finfet.Tech.min_margin }

let print_fig5 () =
  List.iter
    (fun (label, technique, paper_note) ->
      let sweep = fig5_write_assist technique in
      let table =
        Report.create ~columns:[ "voltage"; "WM"; "cell write delay" ]
      in
      Array.iter
        (fun p ->
          Report.add_row table
            [ Units.mv p.Assist.Sweep.voltage;
              Units.mv p.Assist.Sweep.wm;
              Units.ps p.Assist.Sweep.cell_write_delay ])
        sweep.points;
      Report.print
        ~title:
          (Printf.sprintf "Figure 5(%s): %s on 6T-HVT" label
             (Assist.Technique.write_assist_name technique))
        table;
      match sweep.wm_yield_crossing with
      | Some v ->
        Printf.printf "WM meets the yield rule at %s (%s)\n" (Units.mv v) paper_note
      | None ->
        Printf.printf "WM does not cross the yield rule in range (%s)\n" paper_note)
    [ ("a", Assist.Technique.Wl_overdrive, "paper: V_WL = 540 mV");
      ("b", Assist.Technique.Negative_bl, "paper: V_BL = -100 mV") ]

(* --- Table 4 / Figure 7 --- *)

type design_row = {
  capacity_bits : int;
  config : Framework.config;
  nr : int;
  nc : int;
  n_pre : int;
  n_wr : int;
  vddc : float;
  vssc : float;
  vwl : float;
  d_array : float;
  e_total : float;
  edp : float;
  d_bl_read : float;
}

let design_table ?(capacities = Framework.paper_capacities) ?accounting () =
  let results =
    Framework.sweep_capacities ?accounting ~capacities
      ~configs:Framework.all_configs ()
  in
  List.map
    (fun (o : Framework.optimized) ->
      let g = Framework.geometry o in
      let a = Framework.assist o in
      let m = Framework.metrics o in
      { capacity_bits = o.Framework.capacity_bits;
        config = o.Framework.config;
        nr = g.Array_model.Geometry.nr;
        nc = g.Array_model.Geometry.nc;
        n_pre = g.Array_model.Geometry.n_pre;
        n_wr = g.Array_model.Geometry.n_wr;
        vddc = a.Array_model.Components.vddc;
        vssc = a.Array_model.Components.vssc;
        vwl = a.Array_model.Components.vwl;
        d_array = m.Array_model.Array_eval.d_array;
        e_total = m.Array_model.Array_eval.e_total;
        edp = m.Array_model.Array_eval.edp;
        d_bl_read = m.Array_model.Array_eval.d_bl_read })
    results

let print_table4 () =
  let rows = design_table () in
  let table =
    Report.create
      ~columns:
        [ "M"; "SRAM"; "n_r"; "n_c"; "N_pre"; "N_wr"; "V_DDC"; "V_SSC"; "V_WL" ]
  in
  let last_capacity = ref 0 in
  List.iter
    (fun r ->
      if !last_capacity <> 0 && r.capacity_bits <> !last_capacity then
        Report.add_separator table;
      last_capacity := r.capacity_bits;
      Report.add_row table
        [ Units.capacity r.capacity_bits;
          Framework.config_name r.config;
          string_of_int r.nr; string_of_int r.nc;
          string_of_int r.n_pre; string_of_int r.n_wr;
          Units.mv r.vddc; Units.mv r.vssc; Units.mv r.vwl ])
    rows;
  Report.print ~title:"Table 4: SRAM array design parameters at the minimum-EDP point"
    table

let print_fig7 () =
  let rows = design_table () in
  List.iter
    (fun (title, value) ->
      let table =
        Report.create
          ~columns:
            [ "M"; "6T-LVT-M1"; "6T-HVT-M1"; "6T-LVT-M2"; "6T-HVT-M2" ]
      in
      List.iter
        (fun capacity_bits ->
          let cell config =
            match
              List.find_opt
                (fun r -> r.capacity_bits = capacity_bits && r.config = config)
                rows
            with
            | Some r -> value r
            | None -> "-"
          in
          Report.add_row table
            (Units.capacity capacity_bits
             :: List.map cell Framework.all_configs))
        Framework.paper_capacities;
      Report.print ~title table)
    [ ("Figure 7(a): array delay", fun r -> Units.ps r.d_array);
      ("Figure 7(b): array energy per access", fun r -> Units.fj r.e_total);
      ("Figure 7(c): energy-delay product",
       fun r -> Printf.sprintf "%.3g Js" r.edp) ];
  let series config marker =
    { Ascii_plot.label = Framework.config_name config;
      marker;
      points =
        List.filter_map
          (fun r ->
            if r.config = config then
              Some (log (float_of_int r.capacity_bits) /. log 2.0, r.edp)
            else None)
          rows }
  in
  print_newline ();
  Ascii_plot.print ~log_y:true ~x_label:"log2(capacity bits)" ~y_label:"EDP (Js)"
    [ series { Framework.flavor = Finfet.Library.Lvt; method_ = Opt.Space.M1 } '1';
      series { Framework.flavor = Finfet.Library.Hvt; method_ = Opt.Space.M1 } '2';
      series { Framework.flavor = Finfet.Library.Lvt; method_ = Opt.Space.M2 } '3';
      series { Framework.flavor = Finfet.Library.Hvt; method_ = Opt.Space.M2 } '4' ]

let print_fig7d () =
  let rows = design_table () in
  let table =
    Report.create
      ~columns:
        [ "M"; "M1 BL delay"; "M1 total"; "M2 BL delay"; "M2 total";
          "BL speedup"; "total speedup" ]
  in
  List.iter
    (fun capacity_bits ->
      let find method_ =
        List.find
          (fun r ->
            r.capacity_bits = capacity_bits
            && r.config
               = { Framework.flavor = Finfet.Library.Hvt; method_ })
          rows
      in
      let m1 = find Opt.Space.M1 and m2 = find Opt.Space.M2 in
      Report.add_row table
        [ Units.capacity capacity_bits;
          Units.ps m1.d_bl_read; Units.ps m1.d_array;
          Units.ps m2.d_bl_read; Units.ps m2.d_array;
          Printf.sprintf "%.1fx" (m1.d_bl_read /. m2.d_bl_read);
          Printf.sprintf "%.1fx" (m1.d_array /. m2.d_array) ])
    Framework.paper_capacities;
  Report.print
    ~title:
      "Figure 7(d): BL vs total delay, 6T-HVT-M1 vs 6T-HVT-M2 (paper: BL 3.3x, total 1.8x average)"
    table

let print_headline () =
  let h = Framework.headline () in
  let table =
    Report.create ~columns:[ "capacity"; "EDP reduction"; "delay penalty" ]
  in
  List.iter
    (fun (capacity_bits, reduction, penalty) ->
      Report.add_row table
        [ Units.capacity capacity_bits;
          Units.percent (-.reduction);
          Units.percent penalty ])
    h.Framework.per_capacity;
  Report.print
    ~title:"Headline: 6T-HVT-M2 vs 6T-LVT-M2 (capacities >= 1KB)" table;
  Printf.printf
    "Average EDP reduction: %.1f%% (paper: 59%%); delay penalty avg %.1f%% / max %.1f%% (paper: 9%% / 12%%)\n"
    (100.0 *. h.Framework.avg_edp_reduction)
    (100.0 *. h.Framework.avg_delay_penalty)
    (100.0 *. h.Framework.max_delay_penalty)

let run_all () =
  print_fig2 ();
  print_fig3a ();
  print_fig3bcd ();
  print_fig5 ();
  print_table4 ();
  print_fig7 ();
  print_fig7d ();
  print_headline ()
