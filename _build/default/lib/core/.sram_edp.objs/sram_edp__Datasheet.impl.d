lib/core/datasheet.ml: Array_model Buffer Finfet Framework Gates Lazy List Printf Sram_cell String Units
