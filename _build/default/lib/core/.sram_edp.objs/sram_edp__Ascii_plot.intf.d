lib/core/ascii_plot.mli:
