lib/core/experiments.ml: Array Array_model Ascii_plot Assist Finfet Framework Lazy List Opt Printf Report Sram_cell Units
