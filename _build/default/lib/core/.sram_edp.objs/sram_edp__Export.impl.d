lib/core/export.ml: Array Assist Buffer Experiments Filename Framework List Printf String Sys
