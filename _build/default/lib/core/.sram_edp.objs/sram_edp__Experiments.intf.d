lib/core/experiments.mli: Array_model Assist Framework
