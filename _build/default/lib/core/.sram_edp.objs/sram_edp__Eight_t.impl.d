lib/core/eight_t.ml: Array_model Finfet Framework Lazy List Opt Printf Report Sram_cell Units
