lib/core/export.mli:
