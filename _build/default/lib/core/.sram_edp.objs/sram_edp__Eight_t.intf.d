lib/core/eight_t.mli: Array_model Opt
