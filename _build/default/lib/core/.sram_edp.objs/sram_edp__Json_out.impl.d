lib/core/json_out.ml: Array_model Buffer Char Experiments Float Framework List Printf String
