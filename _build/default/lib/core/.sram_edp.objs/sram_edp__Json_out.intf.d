lib/core/json_out.mli: Array_model Experiments Framework
