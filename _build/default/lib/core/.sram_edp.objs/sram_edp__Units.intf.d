lib/core/units.mli:
