lib/core/units.ml: List Printf
