lib/core/framework.ml: Array_model Finfet Hashtbl List Opt Printf
