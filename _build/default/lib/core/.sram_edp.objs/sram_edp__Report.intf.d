lib/core/report.mli:
