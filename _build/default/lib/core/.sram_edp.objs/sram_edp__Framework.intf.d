lib/core/framework.mli: Array_model Finfet Opt
