lib/core/datasheet.mli: Array_model Framework Sram_cell
