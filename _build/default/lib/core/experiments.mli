(** Reproduction drivers for every figure and table of the paper's
    evaluation.  Each experiment returns structured data; the [print_*]
    companions render the same rows the paper reports (see EXPERIMENTS.md
    for paper-vs-measured commentary). *)

(** {1 Figure 2 — HSNM and leakage versus supply voltage} *)

type voltage_point = {
  vdd : float;
  lvt : float;
  hvt : float;
}

val fig2a_hsnm : ?vdds:float array -> unit -> voltage_point array
(** Hold SNM of both flavors across the supply sweep (values in volts). *)

val fig2b_leakage : ?vdds:float array -> unit -> voltage_point array
(** Cell leakage power across the sweep (values in watts). *)

val print_fig2 : unit -> unit

(** {1 Figure 3(a) — RSNM and read current, HVT vs LVT} *)

type fig3a = {
  rsnm_lvt : float;
  rsnm_hvt : float;
  iread_lvt : float;
  iread_hvt : float;
}

val fig3a : unit -> fig3a
val print_fig3a : unit -> unit

(** {1 Figures 3(b)-(d) — read-assist sweeps on 6T-HVT} *)

type read_assist_sweep = {
  technique : Assist.Technique.read_assist;
  points : Assist.Sweep.read_point array;
  yield_crossing : float option;
      (** assist voltage where RSNM reaches the 35%%-Vdd rule *)
  lvt_delay_crossing : float option;
      (** assist voltage where the HVT column's BL delay matches the
          unassisted LVT column's *)
}

val fig3_read_assist : Assist.Technique.read_assist -> read_assist_sweep
val print_fig3bcd : unit -> unit

(** {1 Figure 5 — write-assist sweeps on 6T-HVT} *)

type write_assist_sweep = {
  technique : Assist.Technique.write_assist;
  points : Assist.Sweep.write_point array;
  wm_yield_crossing : float option;
}

val fig5_write_assist : Assist.Technique.write_assist -> write_assist_sweep
val print_fig5 : unit -> unit

(** {1 Table 4 and Figure 7 — optimized arrays} *)

type design_row = {
  capacity_bits : int;
  config : Framework.config;
  nr : int;
  nc : int;
  n_pre : int;
  n_wr : int;
  vddc : float;
  vssc : float;
  vwl : float;
  d_array : float;
  e_total : float;
  edp : float;
  d_bl_read : float;
}

val design_table :
  ?capacities:int list ->
  ?accounting:Array_model.Array_eval.accounting ->
  unit ->
  design_row list
(** One row per (capacity, config): Table 4's parameters joined with the
    Figure 7 metrics. *)

val print_table4 : unit -> unit
val print_fig7 : unit -> unit
(** Figures 7(a)-(c): delay / energy / EDP series per config. *)

val print_fig7d : unit -> unit
(** BL delay vs total delay, 6T-HVT-M1 against 6T-HVT-M2. *)

val print_headline : unit -> unit
(** The abstract's claim, paper-vs-measured. *)

val run_all : unit -> unit
(** Every experiment, in paper order (the bench harness entry point). *)
