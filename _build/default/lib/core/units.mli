(** Engineering-unit formatting for reports. *)

val ps : float -> string
(** Seconds rendered in picoseconds, e.g. "134.2 ps". *)

val fj : float -> string
(** Joules rendered in femtojoules. *)

val nw : float -> string
(** Watts rendered in nanowatts. *)

val mv : float -> string
(** Volts rendered in millivolts (no decimals). *)

val ua : float -> string
(** Amps rendered in microamps. *)

val si : ?digits:int -> float -> string
(** Generic engineering notation with an SI prefix (f, p, n, u, m, '',
    k, M, G). *)

val capacity : int -> string
(** Bits rendered as "128B" / "1KB" / "16KB". *)

val percent : float -> string
(** Ratio rendered as a signed percentage, e.g. "-59.0%". *)
