type t = {
  title : string;
  organization : string;
  rails : (string * float) list;
  margins : (string * float) list;
  timing : (string * float) list;
  energy : (string * float) list;
  summary : Array_model.Array_eval.metrics;
  area : float;
  aspect_ratio : float;
  bl_check : Sram_cell.Column.result;
}

let build (o : Framework.optimized) =
  let g = Framework.geometry o in
  let a = Framework.assist o in
  let flavor = o.Framework.config.Framework.flavor in
  let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
  let m = Array_model.Array_eval.evaluate env g a in
  let d = env.Array_model.Array_eval.dcaps in
  let cur = env.Array_model.Array_eval.currents in
  let per = env.Array_model.Array_eval.periphery in
  let lib = Lazy.force Finfet.Library.default in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib flavor)
      ~pfet:(Finfet.Library.pfet lib flavor)
  in
  let vddc = a.Array_model.Components.vddc in
  let vssc = a.Array_model.Components.vssc in
  let vwl = a.Array_model.Components.vwl in
  let margins =
    [ ("HSNM @ nominal",
       Sram_cell.Margins.hold_snm ~points:61 ~cell Finfet.Tech.vdd_nominal);
      ("RSNM @ rails",
       Sram_cell.Margins.read_snm ~points:61 ~cell
         (Sram_cell.Sram6t.read ~vddc ~vssc ()));
      ("WM @ rails",
       Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl ())) ]
  in
  let de f = f d cur g a in
  let timing =
    let row_dec =
      Array_model.Periphery.row_dec per ~bits:(Array_model.Geometry.row_address_bits g)
    in
    let col_dec =
      Array_model.Periphery.col_dec per ~bits:(Array_model.Geometry.column_address_bits g)
    in
    [ ("row decoder", row_dec.Gates.Decoder.delay);
      ("WL driver (first stages)", per.Array_model.Periphery.driver_delay);
      ("wordline", (de Array_model.Components.wl_read).Array_model.Components.delay);
      ("bitline discharge", (de Array_model.Components.bl_read).Array_model.Components.delay);
      ("column decoder", col_dec.Gates.Decoder.delay);
      ("column select", (de Array_model.Components.col).Array_model.Components.delay);
      ("sense amplifier", per.Array_model.Periphery.sense_delay);
      ("precharge (read)", (de Array_model.Components.precharge_read).Array_model.Components.delay);
      ("cell write", Array_model.Periphery.write_delay per ~vwl);
      ("BL write", (de Array_model.Components.bl_write).Array_model.Components.delay) ]
  in
  let energy =
    let row_dec =
      Array_model.Periphery.row_dec per ~bits:(Array_model.Geometry.row_address_bits g)
    in
    [ ("row decoder", row_dec.Gates.Decoder.energy);
      ("WL driver", per.Array_model.Periphery.driver_energy);
      ("wordline", (de Array_model.Components.wl_read).Array_model.Components.energy);
      ("bitline", (de Array_model.Components.bl_read).Array_model.Components.energy);
      ("sense amplifier", per.Array_model.Periphery.sense_energy);
      ("precharge", (de Array_model.Components.precharge_read).Array_model.Components.energy);
      ("CVDD boost rail", (de Array_model.Components.cvdd).Array_model.Components.energy);
      ("CVSS negative rail", (de Array_model.Components.cvss).Array_model.Components.energy) ]
  in
  let column =
    { Sram_cell.Column.default_config with
      Sram_cell.Column.nr = g.Array_model.Geometry.nr;
      n_pre = g.Array_model.Geometry.n_pre;
      n_wr = g.Array_model.Geometry.n_wr }
  in
  let bl_check =
    Sram_cell.Column.validate ~cell column (Sram_cell.Sram6t.read ~vddc ~vssc ())
  in
  { title =
      Printf.sprintf "%s %s"
        (Units.capacity o.Framework.capacity_bits)
        (Framework.config_name o.Framework.config);
    organization =
      Printf.sprintf "%d rows x %d columns, W = %d bits, N_pre = %d, N_wr = %d"
        g.Array_model.Geometry.nr g.Array_model.Geometry.nc
        g.Array_model.Geometry.w g.Array_model.Geometry.n_pre
        g.Array_model.Geometry.n_wr;
    rails = [ ("V_DDC", vddc); ("V_SSC", vssc); ("V_WL", vwl) ];
    margins;
    timing;
    energy;
    summary = m;
    area = Array_model.Geometry.area g;
    aspect_ratio = Array_model.Geometry.aspect_ratio g;
    bl_check }

let to_string t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" t.title;
  line "%s" (String.make (String.length t.title) '=');
  line "organization : %s" t.organization;
  line "area         : %.1f um^2 (aspect %.2f)" (t.area *. 1e12) t.aspect_ratio;
  line "";
  line "Rails";
  List.iter (fun (name, v) -> line "  %-22s %s" name (Units.mv v)) t.rails;
  line "";
  line "Margins at the rails (requirement %s)" (Units.mv Finfet.Tech.min_margin);
  List.iter
    (fun (name, v) ->
      line "  %-22s %s %s" name (Units.mv v)
        (if v >= Finfet.Tech.min_margin then "(pass)" else "(FAIL)"))
    t.margins;
  line "";
  line "Timing breakdown";
  List.iter (fun (name, v) -> line "  %-22s %s" name (Units.ps v)) t.timing;
  line "  %-22s %s" "read access" (Units.ps t.summary.Array_model.Array_eval.d_read);
  line "  %-22s %s" "write access" (Units.ps t.summary.Array_model.Array_eval.d_write);
  line "  %-22s %s" "cycle (max)" (Units.ps t.summary.Array_model.Array_eval.d_array);
  line "";
  line "Read-access energy breakdown";
  List.iter (fun (name, v) -> line "  %-22s %s" name (Units.fj v)) t.energy;
  line "  %-22s %s" "switching (Eq. 3)"
    (Units.fj t.summary.Array_model.Array_eval.e_switching);
  line "  %-22s %s" "leakage (Eq. 4)"
    (Units.fj t.summary.Array_model.Array_eval.e_leakage);
  line "  %-22s %s" "total (Eq. 5)" (Units.fj t.summary.Array_model.Array_eval.e_total);
  line "";
  line "EDP          : %.4g Js" t.summary.Array_model.Array_eval.edp;
  line "BL spot check: analytic %s vs transient %s (%s)"
    (Units.ps t.bl_check.Sram_cell.Column.analytic)
    (Units.ps t.bl_check.Sram_cell.Column.simulated)
    (Units.percent t.bl_check.Sram_cell.Column.relative_error);
  Buffer.contents buf

let print o = print_string (to_string (build o))
