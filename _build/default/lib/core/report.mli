(** Plain-text table rendering for experiment reports (aligned columns,
    suitable for terminal diffing against the paper's tables). *)

type t
(** A table under construction. *)

val create : columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on column-count mismatch. *)

val add_separator : t -> unit

val to_string : t -> string
(** Render with a header rule and per-column alignment (left). *)

val print : ?title:string -> t -> unit
(** [to_string] to stdout, with an optional underlined title. *)
