(** Array-level comparison of the 8T-LVT alternative against the paper's
    6T proposals — the quantitative version of the paper's introduction
    remark that "more robust SRAM cell structures exist, but such SRAM
    cells come at the cost of larger layout area".

    The 8T array reuses the full analytical machinery with three
    substitutions: cell wire capacitances scaled by the 8T footprint,
    the decoupled read port's stack current as the read-current model,
    and no V_DDC boost (the read SNM equals the hold SNM, which already
    meets the yield rule at nominal).  Negative Gnd remains available —
    on the read-buffer source it speeds the read with no stability
    penalty at all.  The write port is the 6T's, so V_WL keeps its
    yield-driven overdrive. *)

val env : unit -> Array_model.Array_eval.env
(** LVT environment with the 8T wire-capacitance factor and read-current
    model installed. *)

val yield_levels : unit -> Opt.Yield.levels
(** V_DDC pinned at nominal (no boost needed), V_WL from the 6T-LVT write
    analysis (same write port). *)

val optimize : capacity_bits:int -> Opt.Exhaustive.result
(** Co-optimize the 8T array (M2 voltage policy: the V_SSC rail is the
    only extra level). *)

type comparison_row = {
  name : string;
  d_array : float;
  e_total : float;
  edp : float;
  area : float;          (** cell-array silicon, m^2 *)
  leakage_per_cell : float;
}

val compare : capacity_bits:int -> comparison_row list
(** 6T-LVT-M2, 6T-HVT-M2 and 8T-LVT at the same capacity. *)

val print_comparison : capacity_bits:int -> unit
