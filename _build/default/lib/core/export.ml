let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let csv_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

type file = {
  filename : string;
  header : string list;
  rows : string list list;
}

let render f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_line f.header);
  List.iter (fun row -> Buffer.add_string buf (csv_line row)) f.rows;
  Buffer.contents buf

let g v = Printf.sprintf "%.9g" v

let fig2_files () =
  let voltage_rows points =
    Array.to_list
      (Array.map
         (fun (p : Experiments.voltage_point) ->
           [ g p.Experiments.vdd; g p.Experiments.lvt; g p.Experiments.hvt ])
         points)
  in
  [ { filename = "fig2a_hsnm.csv";
      header = [ "vdd_v"; "hsnm_lvt_v"; "hsnm_hvt_v" ];
      rows = voltage_rows (Experiments.fig2a_hsnm ()) };
    { filename = "fig2b_leakage.csv";
      header = [ "vdd_v"; "p_leak_lvt_w"; "p_leak_hvt_w" ];
      rows = voltage_rows (Experiments.fig2b_leakage ()) } ]

let fig3_files () =
  List.map
    (fun (tag, technique) ->
      let sweep = Experiments.fig3_read_assist technique in
      { filename = Printf.sprintf "fig3%s_%s.csv" tag
          (String.map (function ' ' -> '_' | c -> c)
             (String.lowercase_ascii (Assist.Technique.read_assist_name technique)));
        header = [ "voltage_v"; "rsnm_v"; "i_read_a"; "bl_delay_s" ];
        rows =
          Array.to_list
            (Array.map
               (fun (p : Assist.Sweep.read_point) ->
                 [ g p.Assist.Sweep.voltage; g p.Assist.Sweep.rsnm;
                   g p.Assist.Sweep.read_current; g p.Assist.Sweep.bl_delay ])
               sweep.Experiments.points) })
    [ ("b", Assist.Technique.Vdd_boost);
      ("c", Assist.Technique.Negative_gnd);
      ("d", Assist.Technique.Wl_underdrive) ]

let fig5_files () =
  List.map
    (fun (tag, technique) ->
      let sweep = Experiments.fig5_write_assist technique in
      { filename = Printf.sprintf "fig5%s_%s.csv" tag
          (String.map (function ' ' -> '_' | c -> c)
             (String.lowercase_ascii (Assist.Technique.write_assist_name technique)));
        header = [ "voltage_v"; "wm_v"; "cell_write_delay_s" ];
        rows =
          Array.to_list
            (Array.map
               (fun (p : Assist.Sweep.write_point) ->
                 [ g p.Assist.Sweep.voltage; g p.Assist.Sweep.wm;
                   g p.Assist.Sweep.cell_write_delay ])
               sweep.Experiments.points) })
    [ ("a", Assist.Technique.Wl_overdrive); ("b", Assist.Technique.Negative_bl) ]

let fig7_file () =
  let rows = Experiments.design_table () in
  { filename = "table4_fig7_designs.csv";
    header =
      [ "capacity_bits"; "config"; "nr"; "nc"; "n_pre"; "n_wr"; "vddc_v";
        "vssc_v"; "vwl_v"; "d_array_s"; "e_total_j"; "edp_js"; "d_bl_read_s" ];
    rows =
      List.map
        (fun (r : Experiments.design_row) ->
          [ string_of_int r.Experiments.capacity_bits;
            Framework.config_name r.Experiments.config;
            string_of_int r.Experiments.nr;
            string_of_int r.Experiments.nc;
            string_of_int r.Experiments.n_pre;
            string_of_int r.Experiments.n_wr;
            g r.Experiments.vddc; g r.Experiments.vssc; g r.Experiments.vwl;
            g r.Experiments.d_array; g r.Experiments.e_total;
            g r.Experiments.edp; g r.Experiments.d_bl_read ])
        rows }

let all_files () =
  fig2_files () @ fig3_files () @ fig5_files () @ [ fig7_file () ]

let write_all ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun f ->
      let path = Filename.concat dir f.filename in
      let oc = open_out path in
      output_string oc (render f);
      close_out oc;
      path)
    (all_files ())
