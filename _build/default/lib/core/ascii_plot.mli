(** Terminal line charts for the figure reproductions.

    The paper's evaluation is mostly figures; rendering the regenerated
    series as ASCII charts makes the bench output directly comparable to
    them without leaving the terminal.  Deterministic (pure string
    rendering), so it is testable. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;  (** (x, y), any order; sorted internally *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** A [width] x [height] character canvas (defaults 64 x 16) with left/
    bottom axes, min/max tick annotations, one marker character per
    series, and a legend.  [log_y] plots log10 of the values (all y must
    be positive then).  Overlapping points keep the later series' marker.
    @raise Invalid_argument on an empty series list, empty series, or
    non-positive values under [log_y]. *)

val print :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  unit
