let ps x = Printf.sprintf "%.1f ps" (x *. 1e12)
let fj x = Printf.sprintf "%.2f fJ" (x *. 1e15)
let nw x = Printf.sprintf "%.3f nW" (x *. 1e9)
let mv x = Printf.sprintf "%.0f mV" (x *. 1e3)
let ua x = Printf.sprintf "%.2f uA" (x *. 1e6)

let si ?(digits = 3) x =
  if x = 0.0 then "0"
  else begin
    let prefixes =
      [ (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
        (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G") ]
    in
    let mag = abs_float x in
    let scale, prefix =
      List.fold_left
        (fun (bs, bp) (s, p) -> if mag >= s then (s, p) else (bs, bp))
        (1e-15, "f") prefixes
    in
    Printf.sprintf "%.*g%s" digits (x /. scale) prefix
  end

let capacity bits =
  let bytes = bits / 8 in
  if bytes >= 1024 && bytes mod 1024 = 0 then Printf.sprintf "%dKB" (bytes / 1024)
  else Printf.sprintf "%dB" bytes

let percent r = Printf.sprintf "%+.1f%%" (r *. 100.0)
