(** CSV export of the experiment datasets, for external plotting.

    Each figure's series goes to one file with a header row; the CLI's
    [export] command writes the whole set into a directory.  CSV quoting
    follows RFC 4180 (fields containing commas, quotes or newlines are
    quoted; quotes double). *)

val csv_field : string -> string
(** Quote one field if needed. *)

val csv_line : string list -> string
(** One joined, newline-terminated row. *)

type file = {
  filename : string;      (** e.g. "fig2b_leakage.csv" *)
  header : string list;
  rows : string list list;
}

val render : file -> string

val fig2_files : unit -> file list
(** fig2a_hsnm.csv and fig2b_leakage.csv. *)

val fig3_files : unit -> file list
(** One file per read-assist technique. *)

val fig5_files : unit -> file list

val fig7_file : unit -> file
(** The full design table (Table 4 + Figure 7 metrics). *)

val all_files : unit -> file list

val write_all : dir:string -> unit -> string list
(** Render every dataset into [dir] (created if missing); returns the
    paths written. *)
