(** Datasheet generation for an optimized design.

    The optimizer's output is a tuple of parameters; what a design team
    consumes is a datasheet: organization, rails, the margins actually
    achieved at those rails, per-component timing and energy breakdowns
    (the Table 2/3 terms evaluated at the design point), silicon area,
    and a transient spot-check of the critical bitline path. *)

type t = {
  title : string;
  organization : string;
  rails : (string * float) list;        (** name, volts *)
  margins : (string * float) list;      (** name, volts (at the rails) *)
  timing : (string * float) list;       (** component, seconds *)
  energy : (string * float) list;       (** component, joules (read access) *)
  summary : Array_model.Array_eval.metrics;
  area : float;                         (** m^2 *)
  aspect_ratio : float;
  bl_check : Sram_cell.Column.result;   (** Equation (1) spot check *)
}

val build : Framework.optimized -> t
(** Evaluate every component of the design point (margins re-measured at
    the chosen rails; the bitline check runs one transient). *)

val to_string : t -> string

val print : Framework.optimized -> unit
