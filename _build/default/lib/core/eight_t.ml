let cell () = Sram_cell.Sram8t.of_library (Lazy.force Finfet.Library.default) Finfet.Library.Lvt

let env () =
  let eight = cell () in
  let read_current ~vddc:_ ~vssc =
    Sram_cell.Sram8t.read_current eight ~vssc ()
  in
  Array_model.Array_eval.make_env
    ~read_current_model:(`Custom read_current)
    ~cell_width_factor:Sram_cell.Sram8t.area_factor
    ~cell_flavor:Finfet.Library.Lvt ()

let yield_levels () =
  let six_t_lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
  let eight = cell () in
  { Opt.Yield.vddc_min = Finfet.Tech.vdd_nominal; (* RSNM = HSNM >= delta already *)
    vwl_min = six_t_lvt.Opt.Yield.vwl_min;        (* same 6T write port *)
    hsnm_nominal =
      Sram_cell.Sram8t.hold_snm eight ~vdd:Finfet.Tech.vdd_nominal }

let optimize ~capacity_bits =
  Opt.Exhaustive.search ~levels:(yield_levels ()) ~env:(env ()) ~capacity_bits
    ~method_:Opt.Space.M2 ()

type comparison_row = {
  name : string;
  d_array : float;
  e_total : float;
  edp : float;
  area : float;
  leakage_per_cell : float;
}

let row_of_metrics ~name ~area_factor ~leakage_per_cell
    (result : Opt.Exhaustive.result) =
  let best = result.Opt.Exhaustive.best in
  let m = best.Opt.Exhaustive.metrics in
  { name;
    d_array = m.Array_model.Array_eval.d_array;
    e_total = m.Array_model.Array_eval.e_total;
    edp = m.Array_model.Array_eval.edp;
    area = area_factor *. Array_model.Geometry.area best.Opt.Exhaustive.geometry;
    leakage_per_cell }

let compare ~capacity_bits =
  let six name flavor =
    let o =
      Framework.optimize ~capacity_bits
        ~config:{ Framework.flavor; method_ = Opt.Space.M2 }
        ()
    in
    let per = Array_model.Periphery.shared ~cell_flavor:flavor in
    row_of_metrics ~name ~area_factor:1.0
      ~leakage_per_cell:per.Array_model.Periphery.p_leak_cell
      o.Framework.result
  in
  let eight =
    row_of_metrics ~name:"8T-LVT" ~area_factor:Sram_cell.Sram8t.area_factor
      ~leakage_per_cell:(Sram_cell.Sram8t.leakage_power (cell ()))
      (optimize ~capacity_bits)
  in
  [ six "6T-LVT-M2" Finfet.Library.Lvt;
    six "6T-HVT-M2" Finfet.Library.Hvt;
    eight ]

let print_comparison ~capacity_bits =
  let rows = compare ~capacity_bits in
  let table =
    Report.create
      ~columns:[ "cell"; "delay"; "energy"; "EDP"; "array area"; "leak/cell" ]
  in
  List.iter
    (fun r ->
      Report.add_row table
        [ r.name;
          Units.ps r.d_array;
          Units.fj r.e_total;
          Printf.sprintf "%.3g Js" r.edp;
          Printf.sprintf "%.1f um^2" (r.area *. 1e12);
          Units.nw r.leakage_per_cell ])
    rows;
  Report.print
    ~title:
      (Printf.sprintf
         "8T-LVT vs the paper's 6T designs at %s (decoupled read port vs HVT + assists)"
         (Units.capacity capacity_bits))
    table
