type series = {
  label : string;
  marker : char;
  points : (float * float) list;
}

let render ?(width = 64) ?(height = 16) ?(log_y = false) ?(x_label = "")
    ?(y_label = "") series_list =
  if series_list = [] then invalid_arg "Ascii_plot.render: no series";
  List.iter
    (fun s ->
      if s.points = [] then invalid_arg "Ascii_plot.render: empty series";
      if log_y then
        List.iter
          (fun (_, y) ->
            if y <= 0.0 then
              invalid_arg "Ascii_plot.render: non-positive value under log_y")
          s.points)
    series_list;
  let transform y = if log_y then log10 y else y in
  let all_points = List.concat_map (fun s -> s.points) series_list in
  let xs = List.map fst all_points in
  let ys = List.map (fun (_, y) -> transform y) all_points in
  let x_min = List.fold_left min infinity xs in
  let x_max = List.fold_left max neg_infinity xs in
  let y_min = List.fold_left min infinity ys in
  let y_max = List.fold_left max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let canvas = Array.make_matrix height width ' ' in
  let place s =
    List.iter
      (fun (x, y) ->
        let col =
          int_of_float
            (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
        in
        let row_from_bottom =
          int_of_float
            (Float.round
               ((transform y -. y_min) /. y_span *. float_of_int (height - 1)))
        in
        let row = height - 1 - row_from_bottom in
        canvas.(row).(col) <- s.marker)
      s.points
  in
  List.iter place series_list;
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  let y_tick v = Printf.sprintf "%9.3g" (if log_y then 10.0 ** v else v) in
  for row = 0 to height - 1 do
    let tick =
      if row = 0 then y_tick y_max
      else if row = height - 1 then y_tick y_min
      else String.make 9 ' '
    in
    Buffer.add_string buf tick;
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.init width (fun col -> canvas.(row).(col)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 10 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%10s %-10.3g%*s%10.3g\n" "" x_min (width - 10) "" x_max);
  if x_label <> "" || y_label <> "" then
    Buffer.add_string buf (Printf.sprintf "  x: %s   y: %s%s\n" x_label y_label
                             (if log_y then " (log scale)" else ""));
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %c %s\n" s.marker s.label))
    series_list;
  Buffer.contents buf

let print ?width ?height ?log_y ?x_label ?y_label series_list =
  print_string (render ?width ?height ?log_y ?x_label ?y_label series_list)
