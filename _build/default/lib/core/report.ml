type row = Cells of string list | Separator

type t = {
  columns : string list;
  mutable rows : row list; (* reverse order *)
}

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Report.add_row: column-count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let to_string t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      t.columns
  in
  let render_cells cells =
    String.concat "  "
      (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let body =
    List.map
      (function Separator -> rule | Cells cells -> render_cells cells)
      rows
  in
  String.concat "\n" ((render_cells t.columns :: rule :: body) @ [ "" ])

let print ?title t =
  (match title with
   | Some s ->
     print_newline ();
     print_endline s;
     print_endline (String.make (String.length s) '=')
   | None -> ());
  print_string (to_string t)
