(* sram_opt — command-line front end of the SRAM EDP co-optimization
   framework.

   Subcommands:
     optimize     co-optimize one array (capacity x flavor x method)
     sweep        regenerate Table 4 / Figure 7 across capacities
     experiments  run the full paper-reproduction suite
     margins      report cell margins under given assist levels
     assist       sweep one assist technique (Figures 3 / 5)
     anneal       compare simulated annealing against exhaustive search *)

let capacity_conv =
  let parse s =
    let s = String.trim (String.uppercase_ascii s) in
    let of_bytes b = Ok (b * 8) in
    try
      if String.length s > 2 && String.sub s (String.length s - 2) 2 = "KB" then
        of_bytes (1024 * int_of_string (String.sub s 0 (String.length s - 2)))
      else if String.length s > 1 && s.[String.length s - 1] = 'B' then
        of_bytes (int_of_string (String.sub s 0 (String.length s - 1)))
      else of_bytes (int_of_string s)
    with Failure _ -> Error (`Msg (Printf.sprintf "bad capacity %S (try 4KB, 128B)" s))
  in
  let print ppf bits = Format.fprintf ppf "%s" (Sram_edp.Units.capacity bits) in
  Cmdliner.Arg.conv (parse, print)

let flavor_conv =
  let parse s =
    match Finfet.Library.flavor_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "bad flavor %S (lvt or hvt)" s))
  in
  let print ppf f = Format.fprintf ppf "%s" (Finfet.Library.flavor_to_string f) in
  Cmdliner.Arg.conv (parse, print)

let method_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "M1" -> Ok Opt.Space.M1
    | "M2" -> Ok Opt.Space.M2
    | _ -> Error (`Msg (Printf.sprintf "bad method %S (m1 or m2)" s))
  in
  let print ppf m = Format.fprintf ppf "%s" (Opt.Space.method_name m) in
  Cmdliner.Arg.conv (parse, print)

let accounting_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "strict" | "paper" -> Ok Array_model.Array_eval.Paper_strict
    | "physical" -> Ok Array_model.Array_eval.Physical
    | _ -> Error (`Msg (Printf.sprintf "bad accounting %S (strict or physical)" s))
  in
  let print ppf = function
    | Array_model.Array_eval.Paper_strict -> Format.fprintf ppf "strict"
    | Array_model.Array_eval.Physical -> Format.fprintf ppf "physical"
  in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let capacity_arg =
  Arg.(value & opt capacity_conv (4096 * 8)
       & info [ "capacity"; "c" ] ~docv:"CAP" ~doc:"Array capacity (e.g. 4KB, 128B).")

let flavor_arg =
  Arg.(value & opt flavor_conv Finfet.Library.Hvt
       & info [ "flavor"; "f" ] ~docv:"FLAVOR" ~doc:"SRAM cell device flavor: lvt or hvt.")

let method_arg =
  Arg.(value & opt method_conv Opt.Space.M2
       & info [ "method"; "m" ] ~docv:"METHOD" ~doc:"Voltage-pin policy: m1 or m2.")

(* The richer `--method` grammar of `optimize` and `query`: a pin
   policy, a search strategy, or both ("m1:nsga2") — parsed by
   {!Opt.Strategy.parse_method}, shared verbatim with the serve wire
   protocol. *)
let search_method_conv =
  let parse s =
    match Opt.Strategy.parse_method s with
    | Some v -> Ok v
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "bad method %S (m1, m2, exhaustive, local, anneal, nsga2, \
              surrogate, or POLICY:STRATEGY like m1:nsga2)"
             s))
  in
  let print ppf (pin, strategy) =
    Format.fprintf ppf "%s"
      (match (pin, strategy) with
      | Some m, Some st ->
        String.lowercase_ascii (Opt.Space.method_name m)
        ^ ":" ^ Opt.Strategy.name st
      | Some m, None -> String.lowercase_ascii (Opt.Space.method_name m)
      | None, Some st -> Opt.Strategy.name st
      | None, None -> "m2")
  in
  Cmdliner.Arg.conv (parse, print)

let search_method_arg =
  Cmdliner.Arg.(
    value
    & opt search_method_conv (None, None)
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:
          "Voltage-pin policy (m1, m2) and/or search strategy \
           (exhaustive, local, anneal, nsga2, surrogate); combine as \
           POLICY:STRATEGY, e.g. m1:nsga2.  Defaults: m2, exhaustive.")

let seed_arg =
  Cmdliner.Arg.(
    value
    & opt int Opt.Strategy.default_seed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "RNG seed for the stochastic strategies (anneal, nsga2, \
           surrogate).  Same seed, same answer — bit for bit at any \
           --jobs.")

let budget_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Evaluation budget (scan points) for the heuristic \
           strategies; default: a few percent of the space.")

let accounting_arg =
  Arg.(value & opt accounting_conv Array_model.Array_eval.Paper_strict
       & info [ "accounting" ] ~docv:"MODE"
           ~doc:"Energy accounting: strict (Table 3 verbatim) or physical.")

let print_optimized (o : Sram_edp.Framework.optimized) =
  let g = Sram_edp.Framework.geometry o in
  let a = Sram_edp.Framework.assist o in
  let m = Sram_edp.Framework.metrics o in
  let open Sram_edp in
  Printf.printf "%s %s\n" (Units.capacity o.Framework.capacity_bits)
    (Framework.config_name o.Framework.config);
  Printf.printf "  organization : %d rows x %d cols (W=%d)\n"
    g.Array_model.Geometry.nr g.Array_model.Geometry.nc g.Array_model.Geometry.w;
  Printf.printf "  fins         : N_pre=%d N_wr=%d\n"
    g.Array_model.Geometry.n_pre g.Array_model.Geometry.n_wr;
  Printf.printf "  assist rails : V_DDC=%s V_SSC=%s V_WL=%s\n"
    (Units.mv a.Array_model.Components.vddc)
    (Units.mv a.Array_model.Components.vssc)
    (Units.mv a.Array_model.Components.vwl);
  Printf.printf "  delay        : %s (read %s, write %s, BL %s)\n"
    (Units.ps m.Array_model.Array_eval.d_array)
    (Units.ps m.Array_model.Array_eval.d_read)
    (Units.ps m.Array_model.Array_eval.d_write)
    (Units.ps m.Array_model.Array_eval.d_bl_read);
  Printf.printf "  energy       : %s (switching %s, leakage %s)\n"
    (Units.fj m.Array_model.Array_eval.e_total)
    (Units.fj m.Array_model.Array_eval.e_switching)
    (Units.fj m.Array_model.Array_eval.e_leakage);
  Printf.printf "  EDP          : %.4g Js\n" m.Array_model.Array_eval.edp;
  Printf.printf
    "  search       : %d candidates evaluated, %d pruned by bound, %d \
     skipped mid-scan\n"
    o.Framework.result.Opt.Exhaustive.evaluated
    o.Framework.result.Opt.Exhaustive.pruned
    o.Framework.result.Opt.Exhaustive.skipped

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the search (1 = sequential; results are \
                 bit-identical for any value).")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"After the run, print runtime telemetry: evaluation rates, \
                 latency percentiles, per-phase wall time and memo-cache \
                 hit rates.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event timeline of the run (one track \
                 per worker domain) and write it to $(docv).  Load the file \
                 in Perfetto (ui.perfetto.dev) or chrome://tracing.")

let search_log_arg =
  Arg.(value & opt (some string) None
       & info [ "search-log" ] ~docv:"FILE"
           ~doc:"Record the search's convergence journal (incumbent \
                 updates, chunk completions, sampled prune decisions) and \
                 write it to $(docv) as JSON.  Observation only: winners \
                 are bit-identical with or without the journal.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Live progress ticker on stderr: geometries done / pruned, \
                 evaluation rate and ETA.")

let log_level_arg =
  Arg.(value & opt (some string) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Diagnostic verbosity: quiet, error, warn, info or debug \
                 (default warn; the SRAM_OPT_LOG environment variable sets \
                 the same thing).")

(* ----- persistence flags ----- *)

type persist_opts = {
  cache_dir : string option;
  checkpoint : string option;
  resume : bool;
  checkpoint_every : int;
}

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist characterization and optimization results under \
                 $(docv) (append-only record logs, one per cache) so repeat \
                 runs replay instead of recomputing.  The directory is \
                 created if missing.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Journal completed search chunks to $(docv) so an \
                 interrupted sweep can be resumed with $(b,--resume).  \
                 Without $(b,--resume) an existing journal is overwritten.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Replay the $(b,--checkpoint) journal: completed chunks are \
                 skipped and their stored winners folded back in; the final \
                 result is bit-identical to an uninterrupted run at any \
                 $(b,--jobs).")

let checkpoint_every_arg =
  Arg.(value & opt int 64
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Geometries per checkpoint chunk (default 64).  Smaller \
                 chunks lose less work on a crash but write more records; \
                 a resumed journal must use the same value to match.")

let persist_term =
  let make cache_dir checkpoint resume checkpoint_every =
    { cache_dir; checkpoint; resume; checkpoint_every }
  in
  Term.(const make $ cache_dir_arg $ checkpoint_arg $ resume_arg
        $ checkpoint_every_arg)

(* A Ctrl-C / kill during a sweep must not leave half-written logs: the
   handler raises, the exception path below flushes and closes the open
   checkpoint journal and cache logs (compacting where due), and the
   process exits with the conventional 128+signal code — so the very
   next `--resume` replays every completed chunk instead of relying on
   torn-tail recovery. *)
exception Interrupted of int

let install_interrupt () =
  List.map
    (fun s ->
      (s, Sys.signal s (Sys.Signal_handle (fun s -> raise (Interrupted s)))))
    [ Sys.sigint; Sys.sigterm ]

(* Configure the default pool and the observability layer before the
   command body, report/flush afterwards.  Every search entry point picks
   the default pool up, so --jobs needs no further plumbing; likewise the
   instrumentation sites read process-global [Obs] state. *)
let with_runtime ?(trace = None) ?(progress = false) ?(log_level = None)
    ?(search_log = None) ?persist ~jobs ~stats f =
  (match log_level with
   | None -> ()
   | Some s ->
     (match Obs.Log.of_string s with
      | Some level -> Obs.Log.set_level level
      | None ->
        Printf.eprintf
          "sram_opt: bad --log-level %S (quiet|error|warn|info|debug)\n" s;
        exit 2));
  Obs.Control.set_worker_name "main";
  Runtime.Pool.set_default_jobs jobs;
  if stats || trace <> None then Obs.Control.set_enabled true;
  (* The journal is observation-only: arming it cannot change which
     design a search returns (hooks read state, never write it). *)
  if stats || search_log <> None then Obs.Search.arm ();
  if trace <> None then Obs.Trace.start ();
  if progress then Obs.Progress.start ();
  Persist.Faults.load_env ();
  (match persist with
   | None -> ()
   | Some p ->
     Persist.Cache.set_dir p.cache_dir;
     (match p.checkpoint with
      | None -> ()
      | Some path ->
        (match
           Persist.Checkpoint.create ~path ~resume:p.resume
             ~checkpoint_every:p.checkpoint_every ()
         with
         | Ok j -> Persist.Checkpoint.set_default (Some j)
         | Error msg ->
           Printf.eprintf "sram_opt: %s\n" msg;
           exit 2)));
  let close_persist () =
    (match Persist.Checkpoint.default () with
     | Some j ->
       (try Persist.Checkpoint.close j with _ -> ());
       Persist.Checkpoint.set_default None
     | None -> ());
    if persist <> None then Persist.Cache.set_dir None
  in
  let handlers = install_interrupt () in
  let restore_signals () =
    List.iter (fun (s, h) -> Sys.set_signal s h) handlers
  in
  let finish () =
    restore_signals ();
    if progress then Obs.Progress.stop ();
    close_persist ();
    (match search_log with
     | None -> ()
     | Some path ->
       let json = Sram_edp.Json_out.search_journal_json () in
       let s = Obs.Search.summary () in
       let oc = open_out path in
       output_string oc (Sram_edp.Json_out.to_string_pretty json);
       output_char oc '\n';
       close_out oc;
       Printf.eprintf "wrote search journal (%d events) to %s\n%!"
         s.Obs.Search.journaled path);
    match trace with
    | None -> ()
    | Some path ->
      Obs.Trace.stop ();
      let n = Obs.Trace.write path in
      Printf.eprintf "wrote %d trace events to %s\n%!" n path
  in
  match f () with
  | result ->
    finish ();
    if stats then begin
      Runtime.Telemetry.print_report ();
      Obs.Histogram.print_report ();
      Obs.Search.print_report ();
      Runtime.Memo.print_stats ()
    end;
    result
  | exception Interrupted signal ->
    restore_signals ();
    if progress then Obs.Progress.stop ();
    close_persist ();
    Printf.eprintf
      "sram_opt: interrupted — checkpoint and cache logs flushed; \
       rerun with --resume to continue\n%!";
    exit (if signal = Sys.sigterm then 143 else 130)
  | exception e ->
    (* Stop the ticker domain so the exception reaches the user on a
       clean line (and the process can exit).  The journal is closed
       too — its completed chunks are what --resume replays. *)
    restore_signals ();
    if progress then Obs.Progress.stop ();
    close_persist ();
    raise e

let optimize_cmd =
  let run capacity flavor (pin, strategy) accounting seed budget json jobs
      stats trace progress log_level search_log persist =
    let method_ = Option.value ~default:Opt.Space.M2 pin in
    let strategy = Option.value ~default:Opt.Strategy.Exhaustive strategy in
    with_runtime ~trace ~progress ~log_level ~search_log ~persist ~jobs ~stats
    @@ fun () ->
    let o =
      Sram_edp.Framework.optimize ~accounting ~strategy ~rng_seed:seed ?budget
        ~capacity_bits:capacity
        ~config:{ Sram_edp.Framework.flavor; method_ } ()
    in
    if json then begin
      let g = Sram_edp.Framework.geometry o in
      let a = Sram_edp.Framework.assist o in
      print_endline
        (Sram_edp.Json_out.to_string_pretty
           (Sram_edp.Json_out.Obj
              [ ("capacity_bits", Sram_edp.Json_out.Int capacity);
                ("config",
                 Sram_edp.Json_out.String
                   (Sram_edp.Framework.config_name o.Sram_edp.Framework.config));
                ("strategy", Sram_edp.Json_out.String (Opt.Strategy.name strategy));
                ("nr", Sram_edp.Json_out.Int g.Array_model.Geometry.nr);
                ("nc", Sram_edp.Json_out.Int g.Array_model.Geometry.nc);
                ("n_pre", Sram_edp.Json_out.Int g.Array_model.Geometry.n_pre);
                ("n_wr", Sram_edp.Json_out.Int g.Array_model.Geometry.n_wr);
                ("vddc_v", Sram_edp.Json_out.Float a.Array_model.Components.vddc);
                ("vssc_v", Sram_edp.Json_out.Float a.Array_model.Components.vssc);
                ("vwl_v", Sram_edp.Json_out.Float a.Array_model.Components.vwl);
                ("metrics", Sram_edp.Json_out.of_metrics (Sram_edp.Framework.metrics o));
                (* Same digest the serve protocol returns, so a one-shot
                   run and a server answer compare with string equality. *)
                ("checksum",
                 Sram_edp.Json_out.String
                   (Opt.Exhaustive.checksum [ o.Sram_edp.Framework.result ])) ]))
    end
    else print_optimized o
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Co-optimize one SRAM array for minimum EDP")
    Term.(const run $ capacity_arg $ flavor_arg $ search_method_arg
          $ accounting_arg $ seed_arg $ budget_arg
          $ json_flag $ jobs_arg $ stats_arg $ trace_arg $ progress_arg
          $ log_level_arg $ search_log_arg $ persist_term)

let sweep_cmd =
  let run json jobs stats trace progress log_level search_log persist =
    with_runtime ~trace ~progress ~log_level ~search_log ~persist ~jobs ~stats
    @@ fun () ->
    if json then begin
      (* Evaluate the sweep before snapshotting the telemetry: list and
         [@] operands evaluate right-to-left in OCaml. *)
      let designs = Sram_edp.Json_out.design_table_json () in
      let headline =
        Sram_edp.Json_out.of_headline (Sram_edp.Framework.headline ())
      in
      let fields = [ ("designs", designs); ("headline", headline) ] in
      let fields =
        if stats then
          fields @ [ ("runtime", Sram_edp.Json_out.runtime_stats_json ()) ]
        else fields
      in
      print_endline
        (Sram_edp.Json_out.to_string_pretty (Sram_edp.Json_out.Obj fields))
    end
    else begin
      Sram_edp.Experiments.print_table4 ();
      Sram_edp.Experiments.print_fig7 ();
      Sram_edp.Experiments.print_fig7d ();
      Sram_edp.Experiments.print_headline ()
    end
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Regenerate Table 4 and Figure 7 across capacities")
    Term.(const run $ json_flag $ jobs_arg $ stats_arg $ trace_arg
          $ progress_arg $ log_level_arg $ search_log_arg $ persist_term)

let experiments_cmd =
  let run jobs stats trace progress log_level persist =
    with_runtime ~trace ~progress ~log_level ~persist ~jobs ~stats
      Sram_edp.Experiments.run_all
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Run the full paper-reproduction suite")
    Term.(const run $ jobs_arg $ stats_arg $ trace_arg $ progress_arg
          $ log_level_arg $ persist_term)

let margins_cmd =
  let run flavor vddc vssc vwl =
    let lib = Lazy.force Finfet.Library.default in
    let cell =
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib flavor)
        ~pfet:(Finfet.Library.pfet lib flavor)
    in
    let vdd = Finfet.Tech.vdd_nominal in
    let open Sram_edp in
    Printf.printf "6T-%s margins (delta = %s):\n"
      (Finfet.Library.flavor_to_string flavor) (Units.mv Finfet.Tech.min_margin);
    Printf.printf "  HSNM @ nominal : %s\n"
      (Units.mv (Sram_cell.Margins.hold_snm ~cell vdd));
    Printf.printf "  RSNM           : %s (V_DDC=%s, V_SSC=%s)\n"
      (Units.mv
         (Sram_cell.Margins.read_snm ~cell (Sram_cell.Sram6t.read ~vddc ~vssc ())))
      (Units.mv vddc) (Units.mv vssc);
    Printf.printf "  WM             : %s (V_WL=%s)\n"
      (Units.mv
         (Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl ())))
      (Units.mv vwl);
    Printf.printf "  leakage        : %s\n"
      (Units.nw (Sram_cell.Leakage.power ~cell ()))
  in
  let vddc = Arg.(value & opt float 0.450 & info [ "vddc" ] ~doc:"Cell supply during read (V).") in
  let vssc = Arg.(value & opt float 0.0 & info [ "vssc" ] ~doc:"Cell ground during read (V).") in
  let vwl = Arg.(value & opt float 0.450 & info [ "vwl" ] ~doc:"Write wordline level (V).") in
  Cmd.v (Cmd.info "margins" ~doc:"Report 6T cell margins under assist levels")
    Term.(const run $ flavor_arg $ vddc $ vssc $ vwl)

let assist_cmd =
  let technique_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "boost" -> Ok (`Read Assist.Technique.Vdd_boost)
      | "neggnd" -> Ok (`Read Assist.Technique.Negative_gnd)
      | "wlud" -> Ok (`Read Assist.Technique.Wl_underdrive)
      | "wlod" -> Ok (`Write Assist.Technique.Wl_overdrive)
      | "negbl" -> Ok (`Write Assist.Technique.Negative_bl)
      | _ ->
        Error (`Msg (Printf.sprintf "bad technique %S (boost|neggnd|wlud|wlod|negbl)" s))
    in
    let print ppf = function
      | `Read t -> Format.fprintf ppf "%s" (Assist.Technique.read_assist_name t)
      | `Write t -> Format.fprintf ppf "%s" (Assist.Technique.write_assist_name t)
    in
    Arg.conv (parse, print)
  in
  let technique_arg =
    Arg.(required & pos 0 (some technique_conv) None
         & info [] ~docv:"TECHNIQUE" ~doc:"boost, neggnd, wlud, wlod or negbl.")
  in
  let run technique =
    match technique with
    | `Read t ->
      let sweep = Sram_edp.Experiments.fig3_read_assist t in
      Array.iter
        (fun (p : Assist.Sweep.read_point) ->
          Printf.printf "%s: RSNM=%s I_read=%s BL=%s\n"
            (Sram_edp.Units.mv p.Assist.Sweep.voltage)
            (Sram_edp.Units.mv p.Assist.Sweep.rsnm)
            (Sram_edp.Units.ua p.Assist.Sweep.read_current)
            (Sram_edp.Units.ps p.Assist.Sweep.bl_delay))
        sweep.Sram_edp.Experiments.points
    | `Write t ->
      let sweep = Sram_edp.Experiments.fig5_write_assist t in
      Array.iter
        (fun (p : Assist.Sweep.write_point) ->
          Printf.printf "%s: WM=%s write delay=%s\n"
            (Sram_edp.Units.mv p.Assist.Sweep.voltage)
            (Sram_edp.Units.mv p.Assist.Sweep.wm)
            (Sram_edp.Units.ps p.Assist.Sweep.cell_write_delay))
        sweep.Sram_edp.Experiments.points
  in
  Cmd.v (Cmd.info "assist" ~doc:"Sweep one assist technique on the 6T-HVT cell")
    Term.(const run $ technique_arg)

let anneal_cmd =
  let run capacity flavor method_ seed json jobs stats trace progress
      log_level search_log persist =
    with_runtime ~trace ~progress ~log_level ~search_log ~persist ~jobs ~stats
    @@ fun () ->
    let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
    let exhaustive =
      Opt.Exhaustive.search ~env ~capacity_bits:capacity ~method_ ()
    in
    let annealed =
      Opt.Anneal.search ~seed ~env ~capacity_bits:capacity ~method_ ()
    in
    let score (r : Opt.Exhaustive.result) = r.Opt.Exhaustive.best.Opt.Exhaustive.score in
    let gap = 100.0 *. ((score annealed /. score exhaustive) -. 1.0) in
    if json then
      (* result_to_json carries [considered]; for a heuristic search
         that equals [evaluated] (it decides exactly what it tries). *)
      print_endline
        (Persist.Json.to_string
           (Persist.Json.Obj
              [ ("seed", Persist.Json.Int seed);
                ("gap_pct", Persist.Json.Float gap);
                ("exhaustive", Opt.Exhaustive.result_to_json exhaustive);
                ("annealed", Opt.Exhaustive.result_to_json annealed) ]))
    else begin
      Printf.printf "exhaustive: EDP=%.4g Js in %d evaluations\n"
        (score exhaustive) exhaustive.Opt.Exhaustive.evaluated;
      Printf.printf "annealed  : EDP=%.4g Js in %d evaluations (gap %+.2f%%)\n"
        (score annealed) annealed.Opt.Exhaustive.evaluated gap
    end
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Annealing RNG seed.") in
  Cmd.v (Cmd.info "anneal" ~doc:"Compare simulated annealing against exhaustive search")
    Term.(const run $ capacity_arg $ flavor_arg $ method_arg $ seed $ json_flag
          $ jobs_arg $ stats_arg $ trace_arg $ progress_arg $ log_level_arg
          $ search_log_arg $ persist_term)

let explain_cmd =
  let run capacity flavor method_ accounting no_pareto json jobs stats trace
      progress log_level search_log persist =
    with_runtime ~trace ~progress ~log_level ~search_log ~persist ~jobs ~stats
    @@ fun () ->
    let o =
      Sram_edp.Framework.optimize ~accounting ~capacity_bits:capacity
        ~config:{ Sram_edp.Framework.flavor; method_ } ()
    in
    let result = o.Sram_edp.Framework.result in
    let winner = result.Opt.Exhaustive.best in
    (* The memoized env for (flavor, accounting) is the one the search
       priced against, so every number below is the search's own. *)
    let env =
      Array_model.Array_eval.ctx_env
        (Sram_edp.Framework.stage_ctx_for ~flavor ~accounting)
    in
    let at =
      Array_model.Array_eval.attribute env winner.Opt.Exhaustive.geometry
        winner.Opt.Exhaustive.assist
    in
    let bits_eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
    if not (Array_model.Array_eval.attribution_consistent at) then begin
      Printf.eprintf
        "sram_opt explain: attribution terms do not refold to evaluate's \
         totals bit-for-bit — refusing to print a breakdown that lies\n";
      exit 1
    end;
    if
      not
        (bits_eq at.Array_model.Array_eval.at_metrics.Array_model.Array_eval.edp
           winner.Opt.Exhaustive.metrics.Array_model.Array_eval.edp)
    then begin
      Printf.eprintf
        "sram_opt explain: fresh evaluate disagrees with the search's \
         staged kernel for the winner — kernel identity broken\n";
      exit 1
    end;
    let sens =
      Opt.Explain.sensitivity ~env ~pins:result.Opt.Exhaustive.pins ~winner ()
    in
    let pareto =
      if no_pareto then None
      else
        Some
          (Opt.Explain.pareto ~levels:result.Opt.Exhaustive.levels ~env
             ~capacity_bits:capacity ~method_ ())
    in
    if json then begin
      let fields =
        [ ("capacity_bits", Sram_edp.Json_out.Int capacity);
          ("config",
           Sram_edp.Json_out.String
             (Sram_edp.Framework.config_name o.Sram_edp.Framework.config));
          ("attribution", Sram_edp.Json_out.of_attribution at);
          ("sensitivity", Sram_edp.Json_out.of_sensitivity sens) ]
        @
        match pareto with
        | None -> []
        | Some p -> [ ("pareto", Sram_edp.Json_out.of_pareto p) ]
      in
      print_endline
        (Sram_edp.Json_out.to_string_pretty (Sram_edp.Json_out.Obj fields))
    end
    else begin
      let open Sram_edp in
      let m = at.Array_model.Array_eval.at_metrics in
      print_optimized o;
      print_newline ();
      (* E_total shares: Equation (5) weights applied per component. *)
      let e_total = m.Array_model.Array_eval.e_total in
      let energy = Report.create ~columns:[ "component"; "energy"; "share" ] in
      List.iter
        (fun (name, e) ->
          Report.add_row energy
            [ name; Units.fj e; Units.percent (e /. e_total) ])
        (Opt.Explain.energy_rollup at);
      Report.add_separator energy;
      Report.add_row energy [ "E_total"; Units.fj e_total; Units.percent 1.0 ];
      Report.print ~title:"Energy attribution (per access)" energy;
      print_newline ();
      let delay = Report.create ~columns:[ "path"; "stage"; "delay" ] in
      let stages path l =
        List.iter
          (fun (name, d) -> Report.add_row delay [ path; name; Units.ps d ])
          l
      in
      stages "read/row" at.Array_model.Array_eval.at_read_row;
      stages "read/col" at.Array_model.Array_eval.at_read_col;
      stages "read/tail" at.Array_model.Array_eval.at_read_tail;
      Report.add_separator delay;
      stages "write/row" at.Array_model.Array_eval.at_write_row;
      stages "write/col" at.Array_model.Array_eval.at_write_col;
      stages "write/tail" at.Array_model.Array_eval.at_write_tail;
      Report.print ~title:"Delay attribution (critical paths)" delay;
      let refold = Array_model.Array_eval.refold in
      Printf.printf
        "  read : max(row %s, col %s) + tail -> %s\n"
        (Units.ps (refold at.Array_model.Array_eval.at_read_row))
        (Units.ps (refold at.Array_model.Array_eval.at_read_col))
        (Units.ps m.Array_model.Array_eval.d_read);
      Printf.printf
        "  write: max(row %s, col %s) + tail -> %s\n"
        (Units.ps (refold at.Array_model.Array_eval.at_write_row))
        (Units.ps (refold at.Array_model.Array_eval.at_write_col))
        (Units.ps m.Array_model.Array_eval.d_write);
      Printf.printf "  cycle: max(read, write) = %s\n"
        (Units.ps m.Array_model.Array_eval.d_array);
      print_newline ();
      let fmt_neighbor = function
        | None -> "-"
        | Some n ->
          Printf.sprintf "%+.2f%% @ %.3g"
            (100.0 *. n.Opt.Explain.nb_delta)
            n.Opt.Explain.nb_value
      in
      let sensitivity =
        Report.create ~columns:[ "axis"; "value"; "one step down"; "one step up" ]
      in
      List.iter
        (fun (ax : Opt.Explain.axis) ->
          Report.add_row sensitivity
            [ ax.Opt.Explain.ax_name;
              Printf.sprintf "%.3g" ax.Opt.Explain.ax_value;
              fmt_neighbor ax.Opt.Explain.ax_minus;
              fmt_neighbor ax.Opt.Explain.ax_plus ])
        sens;
      Report.print
        ~title:"Objective sensitivity (finite differences on the search grid)"
        sensitivity;
      match pareto with
      | None -> ()
      | Some p ->
        print_newline ();
        let front = Report.create
            ~columns:[ "organization"; "N_pre"; "N_wr"; "V_SSC"; "delay";
                       "energy"; "EDP"; "" ]
        in
        let is_knee c =
          match p.Opt.Explain.pv_knee with
          | Some k -> k.Opt.Exhaustive.score = c.Opt.Exhaustive.score
          | None -> false
        in
        List.iter
          (fun (c : Opt.Exhaustive.candidate) ->
            let g = c.Opt.Exhaustive.geometry in
            let cm = c.Opt.Exhaustive.metrics in
            Report.add_row front
              [ Printf.sprintf "%dx%d" g.Array_model.Geometry.nr
                  g.Array_model.Geometry.nc;
                string_of_int g.Array_model.Geometry.n_pre;
                string_of_int g.Array_model.Geometry.n_wr;
                Units.mv c.Opt.Exhaustive.assist.Array_model.Components.vssc;
                Units.ps cm.Array_model.Array_eval.d_array;
                Units.fj cm.Array_model.Array_eval.e_total;
                Printf.sprintf "%.4g Js" cm.Array_model.Array_eval.edp;
                (if is_knee c then "<-- knee" else "") ])
          p.Opt.Explain.pv_front;
        Report.print ~title:"Delay-energy Pareto front" front;
        Printf.printf "  provenance: %s; %d candidates, %d dominated\n"
          p.Opt.Explain.pv_source p.Opt.Explain.pv_evaluated
          p.Opt.Explain.pv_dominated
    end
  in
  let no_pareto =
    Arg.(value & flag
         & info [ "no-pareto" ]
             ~doc:"Skip the keep-all re-enumeration that derives the \
                   delay-energy front (the breakdown and sensitivity \
                   sections need only a handful of evaluations).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Attribute the winner's EDP to components and stages, with \
             per-axis sensitivity and Pareto provenance")
    Term.(const run $ capacity_arg $ flavor_arg $ method_arg $ accounting_arg
          $ no_pareto $ json_flag $ jobs_arg $ stats_arg $ trace_arg
          $ progress_arg $ log_level_arg $ search_log_arg $ persist_term)

let bank_cmd =
  let run capacity flavor method_ max_banks jobs stats trace progress
      log_level persist =
    with_runtime ~trace ~progress ~log_level ~persist ~jobs ~stats @@ fun () ->
    let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
    let best, all =
      Cache_model.Banked.optimize ~space:Opt.Space.reduced ~max_banks ~env
        ~capacity_bits:capacity ~method_ ()
    in
    let table =
      Sram_edp.Report.create
        ~columns:[ "banks"; "bank org"; "H-tree"; "total delay"; "energy"; "EDP"; "" ]
    in
    List.iter
      (fun (d : Cache_model.Banked.bank_design) ->
        let g = d.Cache_model.Banked.per_bank.Opt.Exhaustive.best.Opt.Exhaustive.geometry in
        Sram_edp.Report.add_row table
          [ string_of_int d.Cache_model.Banked.banks;
            Printf.sprintf "%dx%d" g.Array_model.Geometry.nr g.Array_model.Geometry.nc;
            Sram_edp.Units.ps d.Cache_model.Banked.d_htree;
            Sram_edp.Units.ps d.Cache_model.Banked.d_total;
            Sram_edp.Units.fj d.Cache_model.Banked.e_total;
            Printf.sprintf "%.3g Js" d.Cache_model.Banked.edp;
            (if d.Cache_model.Banked.banks = best.Cache_model.Banked.banks
             then "<-- best" else "") ])
      all;
    Sram_edp.Report.print
      ~title:
        (Printf.sprintf "Bank-count sweep, %s %s"
           (Sram_edp.Units.capacity capacity)
           (Finfet.Library.flavor_to_string flavor))
      table
  in
  let max_banks =
    Arg.(value & opt int 16 & info [ "max-banks" ] ~doc:"Largest bank count tried.")
  in
  Cmd.v
    (Cmd.info "bank"
       ~doc:"Co-optimize the bank count on top of the array-level search")
    Term.(const run $ capacity_arg $ flavor_arg $ method_arg $ max_banks
          $ jobs_arg $ stats_arg $ trace_arg $ progress_arg $ log_level_arg
          $ persist_term)

let retention_cmd =
  let run flavor =
    let lib = Lazy.force Finfet.Library.default in
    let cell =
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib flavor)
        ~pfet:(Finfet.Library.pfet lib flavor)
    in
    let s = Sram_cell.Retention.standby ~cell () in
    Printf.printf "6T-%s standby analysis:\n" (Finfet.Library.flavor_to_string flavor);
    Printf.printf "  retention voltage : %s (HSNM rule)\n"
      (Sram_edp.Units.mv s.Sram_cell.Retention.v_retention);
    Printf.printf "  drowsy rail       : %s (+50 mV guard)\n"
      (Sram_edp.Units.mv s.Sram_cell.Retention.v_standby);
    Printf.printf "  leakage           : %s -> %s (%.1f%% saved)\n"
      (Sram_edp.Units.nw s.Sram_cell.Retention.p_active)
      (Sram_edp.Units.nw s.Sram_cell.Retention.p_standby)
      (100.0 *. s.Sram_cell.Retention.savings)
  in
  Cmd.v
    (Cmd.info "retention" ~doc:"Data-retention voltage and drowsy-standby savings")
    Term.(const run $ flavor_arg)

let corners_cmd =
  let run flavor vddc vwl =
    let lib = Lazy.force Finfet.Library.default in
    let nfet = Finfet.Library.nfet lib flavor in
    let pfet = Finfet.Library.pfet lib flavor in
    let table =
      Sram_edp.Report.create ~columns:[ "corner"; "HSNM"; "RSNM"; "WM"; "leakage" ]
    in
    List.iter
      (fun corner ->
        let cell = Finfet.Corners.cell corner ~nfet ~pfet in
        Sram_edp.Report.add_row table
          [ Finfet.Corners.name corner;
            Sram_edp.Units.mv
              (Sram_cell.Margins.hold_snm ~points:41 ~cell Finfet.Tech.vdd_nominal);
            Sram_edp.Units.mv
              (Sram_cell.Margins.read_snm ~points:41 ~cell
                 (Sram_cell.Sram6t.read ~vddc ()));
            Sram_edp.Units.mv
              (Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl ()));
            Sram_edp.Units.nw (Sram_cell.Leakage.power ~cell ()) ])
      Finfet.Corners.all;
    Sram_edp.Report.print
      ~title:
        (Printf.sprintf "Process corners, 6T-%s (V_DDC=%s, V_WL=%s)"
           (Finfet.Library.flavor_to_string flavor) (Sram_edp.Units.mv vddc)
           (Sram_edp.Units.mv vwl))
      table
  in
  let vddc = Arg.(value & opt float 0.55 & info [ "vddc" ] ~doc:"Read-assist supply (V).") in
  let vwl = Arg.(value & opt float 0.55 & info [ "vwl" ] ~doc:"Write WL level (V).") in
  Cmd.v (Cmd.info "corners" ~doc:"Five-corner margin and leakage signoff")
    Term.(const run $ flavor_arg $ vddc $ vwl)

let compare8t_cmd =
  let run capacity = Sram_edp.Eight_t.print_comparison ~capacity_bits:capacity in
  Cmd.v
    (Cmd.info "compare8t"
       ~doc:"Compare the 8T-LVT alternative against the 6T proposals")
    Term.(const run $ capacity_arg)

let workload_cmd =
  let run capacity length =
    let rows = Workload.Sensitivity.study ~length ~capacity_bits:capacity () in
    let table =
      Sram_edp.Report.create
        ~columns:[ "workload"; "alpha"; "beta"; "V_SSC"; "EDP"; "HVT advantage" ]
    in
    List.iter
      (fun (r : Workload.Sensitivity.study_row) ->
        Sram_edp.Report.add_row table
          [ r.Workload.Sensitivity.name;
            Printf.sprintf "%.2f" r.Workload.Sensitivity.alpha;
            Printf.sprintf "%.2f" r.Workload.Sensitivity.beta;
            Sram_edp.Units.mv r.Workload.Sensitivity.vssc;
            Printf.sprintf "%.3g Js" r.Workload.Sensitivity.edp;
            Sram_edp.Units.percent (-.r.Workload.Sensitivity.hvt_advantage) ])
      rows;
    Sram_edp.Report.print
      ~title:
        (Printf.sprintf "Workload sensitivity at %s" (Sram_edp.Units.capacity capacity))
      table
  in
  let length =
    Arg.(value & opt int 20_000 & info [ "length" ] ~doc:"Trace length in cycles.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Co-optimize under trace-derived (alpha, beta) workload parameters")
    Term.(const run $ capacity_arg $ length)

let validate_cmd =
  let run rows vssc =
    let lib = Lazy.force Finfet.Library.default in
    let cell =
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
        ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
    in
    let config = { Sram_cell.Column.default_config with Sram_cell.Column.nr = rows } in
    let read =
      Sram_cell.Column.validate ~cell config (Sram_cell.Sram6t.read ~vddc:0.55 ~vssc ())
    in
    let write = Sram_cell.Column.validate_write ~cell config in
    Printf.printf "read : analytic=%s simulated=%s error=%s\n"
      (Sram_edp.Units.ps read.Sram_cell.Column.analytic)
      (Sram_edp.Units.ps read.Sram_cell.Column.simulated)
      (Sram_edp.Units.percent read.Sram_cell.Column.relative_error);
    Printf.printf "write: analytic=%s simulated=%s error=%s\n"
      (Sram_edp.Units.ps write.Sram_cell.Column.analytic)
      (Sram_edp.Units.ps write.Sram_cell.Column.simulated)
      (Sram_edp.Units.percent write.Sram_cell.Column.relative_error)
  in
  let rows = Arg.(value & opt int 64 & info [ "rows" ] ~doc:"Cells on the bitline.") in
  let vssc = Arg.(value & opt float 0.0 & info [ "vssc" ] ~doc:"Negative-Gnd level (V).") in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate Equation (1) against distributed-RC column transients")
    Term.(const run $ rows $ vssc)

let stat_cmd =
  let run flavor rows vssc k =
    let lib = Lazy.force Finfet.Library.default in
    let cell =
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib flavor)
        ~pfet:(Finfet.Library.pfet lib flavor)
    in
    let g =
      Sram_cell.Stat_timing.bl_delay_guardband ~k ~cell
        ~column:{ Sram_cell.Column.default_config with Sram_cell.Column.nr = rows }
        ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ~vssc ())
        ()
    in
    Printf.printf
      "%d-row column, V_SSC=%s: nominal %s, mean %s, %.0f-sigma slow cell %s (derate %.2fx)\n"
      rows (Sram_edp.Units.mv vssc)
      (Sram_edp.Units.ps g.Sram_cell.Stat_timing.nominal_delay)
      (Sram_edp.Units.ps g.Sram_cell.Stat_timing.mean_delay)
      k
      (Sram_edp.Units.ps g.Sram_cell.Stat_timing.k_sigma_delay)
      g.Sram_cell.Stat_timing.derate
  in
  let rows = Arg.(value & opt int 64 & info [ "rows" ] ~doc:"Cells on the bitline.") in
  let vssc = Arg.(value & opt float 0.0 & info [ "vssc" ] ~doc:"Negative-Gnd level (V).") in
  let k = Arg.(value & opt float 3.0 & info [ "k" ] ~doc:"Sigma multiplier.") in
  Cmd.v
    (Cmd.info "stat" ~doc:"Statistical sense-timing guardband under variation")
    Term.(const run $ flavor_arg $ rows $ vssc $ k)

let datasheet_cmd =
  let run capacity flavor method_ =
    let o =
      Sram_edp.Framework.optimize ~capacity_bits:capacity
        ~config:{ Sram_edp.Framework.flavor; method_ } ()
    in
    Sram_edp.Datasheet.print o
  in
  Cmd.v
    (Cmd.info "datasheet"
       ~doc:"Full datasheet of the optimized design: margins, timing and energy breakdowns")
    Term.(const run $ capacity_arg $ flavor_arg $ method_arg)

let simulate_cmd =
  let run path op_nodes tran tran_node =
    let lib = Lazy.force Finfet.Library.default in
    let text =
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    in
    match Spice.Deck.parse ~lib text with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
    | Ok (netlist, names) ->
      let lookup name =
        match Spice.Deck.node names name with
        | Some n -> n
        | None ->
          Printf.eprintf "unknown node %S\n" name;
          exit 1
      in
      (match tran with
       | None ->
         let s = Spice.Dc.operating_point netlist in
         if not s.Spice.Dc.converged then
           Obs.Log.warn ~section:"spice"
             "operating point did not fully converge";
         let nodes =
           match op_nodes with [] -> List.map fst names | some -> some
         in
         List.iter
           (fun name ->
             Printf.printf "V(%s) = %.6g V\n" name
               (Spice.Dc.node_voltage s (lookup name)))
           nodes
       | Some t_stop ->
         let trace = Spice.Transient.run ~t_stop netlist in
         let name = match tran_node with Some n -> n | None -> fst (List.hd names) in
         let node = lookup name in
         let samples = Spice.Transient.node_trace trace node in
         let times = trace.Spice.Transient.times in
         let step = max 1 (Array.length times / 20) in
         Printf.printf "transient of V(%s) over %g s:\n" name t_stop;
         Array.iteri
           (fun i t ->
             if i mod step = 0 then Printf.printf "  %.4g s  %.6g V\n" t samples.(i))
           times)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DECK" ~doc:"SPICE deck file.")
  in
  let op_nodes =
    Arg.(value & opt_all string [] & info [ "node" ] ~doc:"Node(s) to report (repeatable).")
  in
  let tran =
    Arg.(value & opt (some float) None
         & info [ "tran" ] ~docv:"SECONDS" ~doc:"Run a transient instead of the operating point.")
  in
  let tran_node =
    Arg.(value & opt (some string) None
         & info [ "watch" ] ~doc:"Node to trace during --tran.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Parse a SPICE deck and run an operating point or transient")
    Term.(const run $ path $ op_nodes $ tran $ tran_node)

let export_cmd =
  let run dir =
    let written = Sram_edp.Export.write_all ~dir () in
    List.iter (fun path -> Printf.printf "wrote %s\n" path) written
  in
  let dir =
    Arg.(value & opt string "results" & info [ "dir"; "o" ] ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write every figure's dataset as CSV files")
    Term.(const run $ dir)

(* ----- serving mode ----- *)

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
        Ok ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Error (`Msg (Printf.sprintf "bad port in %S" s)))
    | None -> Error (`Msg (Printf.sprintf "bad address %S (try HOST:PORT)" s))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let socket_arg =
  Arg.(value & opt string "sram_opt.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (empty string disables; \
                 the file is created at startup and unlinked on exit).")

let tcp_arg =
  Arg.(value & opt (some tcp_conv) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Also (or instead) listen on a TCP address, \
                 e.g. 127.0.0.1:7070.")

let deadline_ms_arg =
  Arg.(value & opt float 0.0
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default per-request budget, measured from admission \
                 (0 = unlimited).  A request's own deadline_ms field \
                 overrides this.  An expired request is answered with a \
                 'deadline' error; one that expires mid-search is \
                 cancelled cleanly.")

let serve_cmd =
  let run socket tcp max_queue deadline_ms flight_dir slow_ms jobs stats trace
      progress log_level persist =
    with_runtime ~trace ~progress ~log_level ~persist ~jobs ~stats @@ fun () ->
    let socket_path = if socket = "" then None else Some socket in
    let config =
      { Serve.Server.default_config with
        Serve.Server.socket_path;
        tcp;
        max_queue;
        default_deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
        flight_dir = (if flight_dir = "" then None else Some flight_dir);
        slow_ms = (if slow_ms > 0.0 then Some slow_ms else None) }
    in
    Printf.printf "sram_opt serve: pid %d, jobs %d, listening on %s%s\n%!"
      (Unix.getpid ()) jobs
      (match socket_path with Some p -> p | None -> "")
      (match tcp with
       | Some (h, p) ->
         (if socket_path = None then "" else " and ") ^ Printf.sprintf "%s:%d" h p
       | None -> "");
    let s = Serve.Server.run config in
    Printf.printf
      "sram_opt serve: drained — %d connections, %d served, %d errors\n%!"
      s.Serve.Server.connections s.Serve.Server.served s.Serve.Server.errors
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Admission bound: requests beyond $(docv) pending are \
                   answered 'busy' immediately instead of queueing \
                   unbounded latency.")
  in
  let flight_dir_arg =
    Arg.(value & opt string ""
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Directory for flight-recorder dumps (Perfetto-loadable \
                   JSON written on deadline expiry, internal errors, slow \
                   requests and SIGQUIT).  Defaults to the system temp \
                   directory.")
  in
  let slow_ms_arg =
    Arg.(value & opt float 0.0
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-request threshold: a request whose end-to-end time \
                   exceeds $(docv) is logged at warn and its span tree \
                   dumped to the flight directory (0 = disabled).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the co-optimizer as a long-lived daemon answering \
             optimization queries over a socket"
       ~man:
         [ `S Manpage.s_description;
           `P "Accepts length-prefixed compact-JSON requests (see \
               DESIGN.md \xC2\xA79) over a Unix-domain and/or TCP socket.  All \
               requests share one warm in-memory memo and the optional \
               $(b,--cache-dir) disk tier, so a repeated query is \
               answered in microseconds.  SIGINT/SIGTERM drain \
               gracefully: queued requests are answered, then the \
               listeners close." ])
    Term.(const run $ socket_arg $ tcp_arg $ max_queue $ deadline_ms_arg
          $ flight_dir_arg $ slow_ms_arg
          $ jobs_arg $ stats_arg $ trace_arg $ progress_arg $ log_level_arg
          $ persist_term)

let query_cmd =
  let endpoint_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "optimize" -> Ok `Optimize
      | "explain" -> Ok `Explain
      | "ping" -> Ok `Ping
      | "stats" -> Ok `Stats
      | "metrics" -> Ok `Metrics
      | "shutdown" -> Ok `Shutdown
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "bad endpoint %S (optimize|explain|ping|stats|metrics|shutdown)"
                s))
    in
    let print ppf e =
      Format.fprintf ppf "%s"
        (match e with
         | `Optimize -> "optimize" | `Explain -> "explain" | `Ping -> "ping"
         | `Stats -> "stats" | `Metrics -> "metrics"
         | `Shutdown -> "shutdown")
    in
    Arg.conv (parse, print)
  in
  let objective_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "edp" -> Ok Opt.Objective.Energy_delay_product
      | "ed2" -> Ok Opt.Objective.Energy_delay_squared
      | "energy" -> Ok Opt.Objective.Energy_only
      | "delay" -> Ok Opt.Objective.Delay_only
      | _ -> Error (`Msg (Printf.sprintf "bad objective %S (edp|ed2|energy|delay)" s))
    in
    let print ppf o = Format.fprintf ppf "%s" (Opt.Objective.name o) in
    Arg.conv (parse, print)
  in
  let run socket tcp endpoint capacity flavor (pin, strategy) objective
      accounting seed reduced deadline_ms trace_id json =
    let method_ = Option.value ~default:Opt.Space.M2 pin in
    let strategy = Option.value ~default:Opt.Strategy.Exhaustive strategy in
    let socket_path = if socket = "" then None else Some socket in
    let deadline_ms = if deadline_ms > 0.0 then Some deadline_ms else None in
    let trace_id = if trace_id = "" then None else Some trace_id in
    let connected =
      match tcp with
      | Some addr -> Serve.Client.connect ~tcp:addr ()
      | None -> Serve.Client.connect ?socket_path ()
    in
    match connected with
    | Error e ->
      Printf.eprintf "sram_opt query: %s\n" e;
      exit 1
    | Ok client ->
      let finish = function
        | Error e ->
          Printf.eprintf "sram_opt query: %s\n" e;
          Serve.Client.close client;
          exit 1
        | Ok () -> Serve.Client.close client
      in
      (match endpoint with
       | `Ping ->
         finish
           (Result.map
              (fun j -> print_endline (Persist.Json.to_string j))
              (Serve.Client.ping client))
       | `Stats ->
         finish
           (Result.map
              (fun j -> print_endline (Persist.Json.to_string j))
              (Serve.Client.stats client))
       | `Metrics ->
         finish
           (Result.map print_string (Serve.Client.metrics client))
       | `Shutdown -> finish (Serve.Client.shutdown client)
       | `Explain ->
         let query =
           { Serve.Protocol.default_query with
             Serve.Protocol.capacity_bits = capacity;
             flavor;
             method_;
             strategy;
             rng_seed = seed;
             objective;
             accounting;
             space =
               (if reduced then Serve.Protocol.reduced_override
                else Serve.Protocol.no_override) }
         in
         finish
           (Result.map
              (fun j -> print_endline (Persist.Json.to_string j))
              (Serve.Client.explain ?deadline_ms ?trace_id client query))
       | `Optimize ->
         let query =
           { Serve.Protocol.default_query with
             Serve.Protocol.capacity_bits = capacity;
             flavor;
             method_;
             strategy;
             rng_seed = seed;
             objective;
             accounting;
             space =
               (if reduced then Serve.Protocol.reduced_override
                else Serve.Protocol.no_override) }
         in
         finish
           (Result.map
              (fun (a : Serve.Client.answer) ->
                if json then
                  print_endline
                    (Persist.Json.to_string
                       (Persist.Json.Obj
                          [ ("capacity_bits", Persist.Json.Int a.Serve.Client.capacity_bits);
                            ("config", Persist.Json.String a.Serve.Client.config);
                            ("checksum", Persist.Json.String a.Serve.Client.checksum);
                            ("eval_s", Persist.Json.Float a.Serve.Client.eval_s);
                            ("result",
                             Opt.Exhaustive.result_to_json a.Serve.Client.result) ]))
                else begin
                  print_optimized
                    { Sram_edp.Framework.capacity_bits = a.Serve.Client.capacity_bits;
                      config = { Sram_edp.Framework.flavor; method_ };
                      result = a.Serve.Client.result };
                  Printf.printf "  answered in  : %.3g ms (checksum %s)\n"
                    (1000.0 *. a.Serve.Client.eval_s) a.Serve.Client.checksum
                end)
              (Serve.Client.optimize ?deadline_ms ?trace_id client query)))
  in
  let endpoint_arg =
    Arg.(value & opt endpoint_conv `Optimize
         & info [ "endpoint"; "e" ] ~docv:"ENDPOINT"
             ~doc:"optimize, explain, ping, stats, metrics or shutdown.")
  in
  let objective_arg =
    Arg.(value & opt objective_conv Opt.Objective.Energy_delay_product
         & info [ "objective" ] ~docv:"OBJ" ~doc:"edp, ed2, energy or delay.")
  in
  let reduced_arg =
    Arg.(value & flag
         & info [ "reduced" ]
             ~doc:"Search the reduced grid instead of the paper's full \
                   space (seconds -> milliseconds; the optimum is within \
                   a few percent).")
  in
  let query_deadline_arg =
    Arg.(value & opt float 0.0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request budget sent with the query (0 = server default).")
  in
  let trace_id_arg =
    Arg.(value & opt string ""
         & info [ "trace-id" ] ~docv:"ID"
             ~doc:"Tag the request: the id is echoed in the response and \
                   names the request in the server's spans, logs and \
                   flight dumps (empty = server-generated).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running `sram_opt serve` daemon")
    Term.(const run $ socket_arg $ tcp_arg $ endpoint_arg $ capacity_arg
          $ flavor_arg $ search_method_arg $ objective_arg $ accounting_arg
          $ seed_arg $ reduced_arg $ query_deadline_arg $ trace_id_arg
          $ json_flag)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    (* The +commit suffix matches the provenance stamped into cache and
       checkpoint log headers, so an operator can match a running
       server or an on-disk cache against a build with --version. *)
    Cmd.info "sram_opt"
      ~version:("1.0.0+" ^ Persist.Record_log.git_commit ())
      ~doc:"Device-circuit-architecture co-optimization of SRAM arrays (DAC'16 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ optimize_cmd; explain_cmd; sweep_cmd; experiments_cmd; margins_cmd;
            assist_cmd; anneal_cmd; bank_cmd; retention_cmd; corners_cmd; compare8t_cmd;
            workload_cmd; validate_cmd; stat_cmd; datasheet_cmd; simulate_cmd;
            export_cmd; serve_cmd; query_cmd ]))
